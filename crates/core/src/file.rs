//! The public `DenseFile` type.
//!
//! A `(d,D)`-dense sequential file: a dynamic ordered set of records stored
//! across `M` consecutive pages such that
//!
//! 1. the file holds at most `N = d·M` records,
//! 2. no page holds more than `D` records,
//! 3. records appear in ascending key order across page addresses.
//!
//! Insertions and deletions are maintained by the paper's CONTROL 1
//! (amortized) or CONTROL 2 (worst-case `O(log²M/(D−d))` page accesses)
//! algorithm, selected by [`DenseFileConfig`].

use dsf_pagestore::{IoStats, Key, PagedStore, Record, StoreConfig, TraceBuffer};

use crate::calibrator::{Calibrator, NodeId};
use crate::config::{Algorithm, DenseFileConfig, ResolvedConfig};
use crate::error::{BulkLoadError, DsfError};
use crate::scan::Scan;
use crate::stats::OpStats;
use crate::trace::{CommandKind, Moment, StepEvent, StepRecorder};

/// A `(d,D)`-dense sequential file (Willard, SIGMOD 1986).
///
/// ```
/// use dsf_core::{DenseFile, DenseFileConfig};
///
/// let mut file: DenseFile<u64, &str> =
///     DenseFile::new(DenseFileConfig::control2(64, 8, 40)).unwrap();
/// file.insert(10, "ten").unwrap();
/// file.insert(20, "twenty").unwrap();
/// assert_eq!(file.get(&10), Some(&"ten"));
/// assert_eq!(file.remove(&10), Some("ten"));
/// assert_eq!(file.len(), 1);
/// file.check_invariants().unwrap();
/// ```
pub struct DenseFile<K, V> {
    pub(crate) cfg: ResolvedConfig,
    pub(crate) store: PagedStore<K, V>,
    pub(crate) cal: Calibrator<K>,
    pub(crate) stats: OpStats,
    pub(crate) recorder: Option<StepRecorder>,
}

impl<K: Key, V> DenseFile<K, V> {
    /// Creates an empty file from a configuration.
    pub fn new(config: DenseFileConfig) -> Result<Self, DsfError> {
        let cfg = config.resolve()?;
        let store = PagedStore::new(StoreConfig {
            slots: cfg.slots,
            pages_per_slot: cfg.k,
            page_capacity: cfg.page_capacity,
        })
        .expect("resolved config is non-degenerate");
        let cal = Calibrator::new(cfg.slots, cfg.slot_min, cfg.slot_max);
        Ok(DenseFile {
            cfg,
            store,
            cal,
            stats: OpStats::default(),
            recorder: None,
        })
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// The resolved configuration.
    pub fn config(&self) -> &ResolvedConfig {
        &self.cfg
    }

    /// Records currently stored.
    pub fn len(&self) -> u64 {
        self.cal.total()
    }

    /// Whether the file holds no records.
    pub fn is_empty(&self) -> bool {
        self.cal.total() == 0
    }

    /// Maximum records the file may hold (`N = d·M`).
    pub fn capacity(&self) -> u64 {
        self.cfg.capacity()
    }

    /// Page-access counters of the underlying store.
    pub fn io_stats(&self) -> &IoStats {
        self.store.stats()
    }

    /// The optional physical-access trace (for the disk model).
    pub fn io_trace(&self) -> &TraceBuffer {
        self.store.trace()
    }

    /// Per-command maintenance statistics.
    pub fn op_stats(&self) -> &OpStats {
        &self.stats
    }

    /// The calibrator tree (read-only; used by figures and experiments).
    pub fn calibrator(&self) -> &Calibrator<K> {
        &self.cal
    }

    /// The underlying store (read-only; used by experiments).
    pub fn store(&self) -> &PagedStore<K, V> {
        &self.store
    }

    /// Record count of every slot in address order (free metadata — the
    /// rows of the paper's Figure 4).
    pub fn slot_counts(&self) -> Vec<u64> {
        (0..self.cfg.slots)
            .map(|s| self.store.len(s) as u64)
            .collect()
    }

    /// A mutable back door for deliberately corrupting internal state.
    ///
    /// Exists so tests (and the crash-consistency harness) can construct
    /// every [`crate::InvariantViolation`] variant and prove
    /// [`DenseFile::check_invariants`] detects it. Nothing reached through
    /// the returned handle charges I/O or maintains any invariant — a file
    /// touched through [`Audit`] is corrupt until proven otherwise.
    pub fn audit(&mut self) -> Audit<'_, K, V> {
        Audit { file: self }
    }

    // ------------------------------------------------------------------
    // Step tracing.
    // ------------------------------------------------------------------

    /// Starts recording [`StepEvent`]s for subsequent commands.
    pub fn enable_step_trace(&mut self) {
        if self.recorder.is_none() {
            self.recorder = Some(StepRecorder::new());
        }
    }

    /// Stops recording and returns everything recorded.
    pub fn take_step_trace(&mut self) -> Vec<StepEvent> {
        self.recorder
            .take()
            .map(|mut r| r.take())
            .unwrap_or_default()
    }

    #[inline]
    pub(crate) fn emit(&mut self, ev: impl FnOnce() -> StepEvent) {
        if let Some(r) = self.recorder.as_mut() {
            r.push(ev());
        }
    }

    pub(crate) fn emit_flag_stable(&mut self, moment: Moment) {
        // Flight moment snapshots are a separate opt-in on top of the
        // recorder itself (each costs O(M)); they power the Figure-4-style
        // per-moment table in `dsf flight explain --seq`.
        if dsf_flight::moments_enabled() {
            let code = match moment {
                Moment::AfterStep3 => 0,
                Moment::AfterStep4c => 1,
            };
            dsf_flight::record_moment(code, &self.slot_counts());
        }
        if self.recorder.is_none() {
            return;
        }
        let counts = self.slot_counts();
        if let Some(r) = self.recorder.as_mut() {
            r.push(StepEvent::FlagStable {
                moment,
                slot_counts: counts,
            });
        }
    }

    // ------------------------------------------------------------------
    // Queries.
    // ------------------------------------------------------------------

    /// Looks up a key. Charges the page accesses of one calibrator-guided
    /// probe ("typically two or three", per the paper's step 1).
    pub fn get(&self, key: &K) -> Option<&V> {
        if self.is_empty() {
            return None;
        }
        let slot = self.cal.find_slot(key);
        self.store.get(slot, key)
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Streams every record in key order (see [`Scan`]).
    pub fn iter(&self) -> Scan<'_, K, V> {
        Scan::all(self)
    }

    /// Streams the records with keys in `range`, in key order.
    ///
    /// This is the paper's *stream retrieval*: the scan walks physically
    /// consecutive pages, so under the disk model it pays one seek plus one
    /// transfer per page rather than one seek per record.
    pub fn range<R: std::ops::RangeBounds<K>>(&self, range: R) -> Scan<'_, K, V> {
        Scan::bounded(
            self,
            range.start_bound().cloned(),
            range.end_bound().cloned(),
        )
    }

    // ------------------------------------------------------------------
    // Commands.
    // ------------------------------------------------------------------

    /// Inserts a record, returning the previous value if the key existed.
    ///
    /// A brand-new key is a *command* in the paper's sense: step 1 places
    /// the record and updates the rank counters, and the configured
    /// maintenance algorithm re-establishes BALANCE(d,D). Replacing the
    /// value of an existing key touches only the record's page.
    ///
    /// # Errors
    ///
    /// [`DsfError::CapacityExceeded`] if the file already holds
    /// `N = d·M` records and `key` is not present.
    pub fn insert(&mut self, key: K, value: V) -> Result<Option<V>, DsfError> {
        self.insert_hinted(key, value, None).map(|(old, _)| old)
    }

    /// [`insert`](Self::insert) with an optional slot hint from a previous
    /// command in the same batch (see [`DenseFile::apply_batch`]). The hint
    /// is validated against the live counters before use, so the resolved
    /// slot — and therefore the file's entire evolution — is bit-identical
    /// to the unhinted path. Returns the resolved slot alongside the old
    /// value so the batch loop can chain it into the next command's hint.
    pub(crate) fn insert_hinted(
        &mut self,
        key: K,
        value: V,
        hint: Option<u32>,
    ) -> Result<(Option<V>, u32), DsfError> {
        let pre = self.tel_pre();
        let snap = self.store.stats().snapshot();
        let slot = if self.is_empty() {
            self.cfg.slots / 2
        } else {
            match hint {
                Some(h) => self.cal.find_slot_hinted(&key, h),
                None => self.cal.find_slot(&key),
            }
        };
        // Begun before the search so the step-1 probe's page reads land in
        // the flight record's User phase; a replace or capacity refusal
        // cancels the frame (replay discards cancelled commands).
        let flight = self.flight_begin(dsf_flight::CommandKind::Insert, slot);
        match self.store.search(slot, &key) {
            Ok(idx) => {
                if flight.is_some() {
                    dsf_flight::cancel_command();
                }
                Ok((Some(self.store.replace_at(slot, idx, value)), slot))
            }
            Err(idx) => {
                if self.cal.total() >= self.capacity() {
                    if flight.is_some() {
                        dsf_flight::cancel_command();
                    }
                    return Err(DsfError::CapacityExceeded {
                        capacity: self.capacity(),
                    });
                }
                self.emit(|| StepEvent::CommandBegin {
                    kind: CommandKind::Insert,
                    slot,
                });
                self.store.insert_searched(slot, idx, key, value);
                self.cal.add_count(slot, 1);
                self.cal.refresh_min(slot, self.store.min_key(slot));
                self.after_update(slot);
                let accesses = self.store.stats().since(snap).accesses();
                self.stats.record_command(accesses);
                self.emit(|| StepEvent::CommandEnd { accesses });
                if let Some(f) = flight {
                    self.flight_end(f, accesses);
                }
                if let Some(pre) = pre {
                    self.tel_post(pre, CommandKind::Insert, slot, accesses);
                }
                Ok((None, slot))
            }
        }
    }

    /// Deletes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.remove_hinted(key, None).0
    }

    /// [`remove`](Self::remove) with an optional validated slot hint (see
    /// [`DenseFile::insert_hinted`]). The second element is the resolved
    /// slot (`None` only when the file was empty and no search ran).
    pub(crate) fn remove_hinted(&mut self, key: &K, hint: Option<u32>) -> (Option<V>, Option<u32>) {
        if self.is_empty() {
            return (None, None);
        }
        let pre = self.tel_pre();
        let snap = self.store.stats().snapshot();
        let slot = match hint {
            Some(h) => self.cal.find_slot_hinted(key, h),
            None => self.cal.find_slot(key),
        };
        let flight = self.flight_begin(dsf_flight::CommandKind::Delete, slot);
        let old = match self.store.remove(slot, key) {
            Some(old) => old,
            None => {
                if flight.is_some() {
                    dsf_flight::cancel_command();
                }
                return (None, Some(slot));
            }
        };
        self.emit(|| StepEvent::CommandBegin {
            kind: CommandKind::Delete,
            slot,
        });
        self.cal.add_count(slot, -1);
        self.cal.refresh_min(slot, self.store.min_key(slot));
        self.after_update(slot);
        let accesses = self.store.stats().since(snap).accesses();
        self.stats.record_command(accesses);
        self.emit(|| StepEvent::CommandEnd { accesses });
        if let Some(f) = flight {
            self.flight_end(f, accesses);
        }
        if let Some(pre) = pre {
            self.tel_post(pre, CommandKind::Delete, slot, accesses);
        }
        (Some(old), Some(slot))
    }

    // ------------------------------------------------------------------
    // Telemetry mirroring.
    // ------------------------------------------------------------------

    /// Records a `CommandBegin` flight frame and captures the pre-command
    /// state [`flight_end`](Self::flight_end) needs; `None` (one branch)
    /// while the flight recorder is disabled.
    #[inline]
    fn flight_begin(&self, kind: dsf_flight::CommandKind, slot: u32) -> Option<FlightCmd> {
        if !dsf_flight::enabled() {
            return None;
        }
        dsf_flight::begin_command(kind, u64::from(slot));
        Some(FlightCmd {
            start: std::time::Instant::now(),
            shifts: self.stats.shifts,
        })
    }

    /// Records the `CommandEnd` flight frame. `accesses` is the same
    /// since-snapshot delta handed to `OpStats::record_command`, so flight
    /// attribution reconciles exactly with the live counters.
    fn flight_end(&self, f: FlightCmd, accesses: u64) {
        dsf_flight::end_command(
            accesses,
            self.stats.shifts - f.shifts,
            u64::try_from(f.start.elapsed().as_micros()).unwrap_or(u64::MAX),
        );
    }

    /// Pre-command counter snapshot; `None` (one branch, nothing else)
    /// while the global telemetry spine is disabled.
    ///
    /// `start` is `Some` only for the 1-in-[`crate::tel::SPAN_SAMPLE_EVERY`]
    /// commands that will push a span: the other commands skip the
    /// `Instant::now` pair as well as the span-ring mutex, which is most of
    /// the enabled-path overhead (counter deltas are plain relaxed adds).
    ///
    /// The clock counts *completed structural* commands: this only peeks,
    /// and [`tel_post`](Self::tel_post) — never reached by replaces and
    /// misses — advances it. A non-structural attempt therefore consumes no
    /// sampled slot; the next structural command sees the same tick and
    /// still pushes its span (exactly `ceil(commands / N)` spans total).
    #[inline]
    fn tel_pre(&self) -> Option<TelPre> {
        if !dsf_telemetry::enabled() {
            return None;
        }
        let t = crate::tel::tel();
        let sampled = t
            .span_clock
            .load(std::sync::atomic::Ordering::Relaxed)
            .is_multiple_of(crate::tel::SPAN_SAMPLE_EVERY);
        Some(TelPre {
            start: sampled.then(std::time::Instant::now),
            shifts: self.stats.shifts,
            records_shifted: self.stats.records_shifted,
            activations: self.stats.activations,
            rollbacks: self.stats.rollbacks,
            flags_lowered: self.stats.flags_lowered,
            redistributions: self.stats.redistributions,
        })
    }

    /// Publishes one finished command to the global spine: the access
    /// histogram observation, per-kind command counters, maintenance-event
    /// deltas since `pre`, the cheap gauges, and a [`dsf_telemetry::Span`].
    fn tel_post(&self, pre: TelPre, kind: CommandKind, slot: u32, accesses: u64) {
        let t = crate::tel::tel();
        // Commit the sampling tick peeked in `tel_pre` — only structural
        // commands reach this point, so only they consume sampled slots.
        t.span_clock
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        t.cmd_hist.record(accesses);
        match kind {
            CommandKind::Insert => t.inserts.inc(),
            CommandKind::Delete => t.deletes.inc(),
        }
        let shift_steps = self.stats.shifts - pre.shifts;
        t.shifts.add(shift_steps);
        t.shift_records
            .add(self.stats.records_shifted - pre.records_shifted);
        t.activations.add(self.stats.activations - pre.activations);
        t.rollbacks.add(self.stats.rollbacks - pre.rollbacks);
        t.flags_lowered
            .add(self.stats.flags_lowered - pre.flags_lowered);
        t.redistributions
            .add(self.stats.redistributions - pre.redistributions);
        t.warning_flags.set(f64::from(self.cal.warned_total()));
        t.records.set(self.len() as f64);
        if let Some(start) = pre.start {
            dsf_telemetry::spans().push(dsf_telemetry::Span {
                kind: match kind {
                    CommandKind::Insert => "insert",
                    CommandKind::Delete => "delete",
                },
                target: u64::from(slot),
                pages: accesses,
                shift_steps,
                wal_frames: 0,
                micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
            });
        }
    }

    /// Recomputes the `O(M)` telemetry gauges — above all
    /// `dsf_balance_headroom_worst`, the fraction of its BALANCE(d,D)
    /// threshold `g(v,1)` the tightest calibrator node still has free
    /// (`1 − max_v p(v)/g(v,1)`; 0 = some node exactly at threshold,
    /// negative = BALANCE violated).
    ///
    /// Walking every node is deliberately not done per command; exporters
    /// (`dsf serve-metrics`, `dsf top`, `exp_telemetry`) call this at scrape
    /// or refresh time instead. No-op while telemetry is disabled.
    pub fn refresh_telemetry_gauges(&self) {
        if !dsf_telemetry::enabled() {
            return;
        }
        let t = crate::tel::tel();
        t.warning_flags.set(f64::from(self.cal.warned_total()));
        t.records.set(self.len() as f64);
        let l = f64::from(self.cfg.log_slots);
        let dmin = self.cfg.slot_min as f64;
        let gap = (self.cfg.slot_max - self.cfg.slot_min) as f64;
        let mut worst = 0.0f64;
        for n in self.cal.all_nodes() {
            // g(v,1) = d# + depth(v)·(D#−d#)/L, the Theorem 5.5 bound.
            let g1 = if l > 0.0 {
                dmin + f64::from(n.depth()) * gap / l
            } else {
                dmin
            };
            if g1 > 0.0 {
                let p = self.cal.count(n) as f64 / self.cal.width(n) as f64;
                worst = worst.max(p / g1);
            }
        }
        t.balance_headroom.set(1.0 - worst);
    }

    fn after_update(&mut self, slot: u32) {
        match self.cfg.algorithm {
            Algorithm::Control1 => self.control1_after_update(slot),
            Algorithm::Control2 => self.control2_after_update(slot),
        }
    }

    // ------------------------------------------------------------------
    // Bulk loading.
    // ------------------------------------------------------------------

    /// Loads strictly-ascending records into an empty file, spread with
    /// uniform density over the address space — the initial condition of
    /// Theorem 5.5.
    pub fn bulk_load<I>(&mut self, items: I) -> Result<(), DsfError>
    where
        I: IntoIterator<Item = (K, V)>,
    {
        if !self.is_empty() {
            return Err(BulkLoadError::NotEmpty.into());
        }
        let mut recs: Vec<Record<K, V>> = Vec::new();
        for (i, (k, v)) in items.into_iter().enumerate() {
            if let Some(prev) = recs.last() {
                if prev.key >= k {
                    return Err(BulkLoadError::NotSorted { index: i }.into());
                }
            }
            recs.push(Record::new(k, v));
        }
        let n = recs.len() as u64;
        if n > self.capacity() {
            return Err(BulkLoadError::TooMany {
                records: n,
                capacity: self.capacity(),
            }
            .into());
        }
        // Even spread: slot i receives records [n·i/M, n·(i+1)/M).
        self.respread(recs, 0, self.cfg.slots);
        self.cal.recompute_subtree(NodeId::ROOT);
        self.post_load_activation_scan();
        Ok(())
    }

    /// Loads an explicit per-slot layout into an empty file (tests, figures
    /// and experiments; Example 5.2 starts from a non-uniform layout).
    ///
    /// The layout must be globally sorted with unique keys, respect the
    /// per-slot density bound `D#`, and satisfy BALANCE(d,D) — Theorem 5.5's
    /// precondition on the initial state.
    pub fn bulk_load_per_slot(&mut self, layout: Vec<Vec<(K, V)>>) -> Result<(), DsfError> {
        if !self.is_empty() {
            return Err(BulkLoadError::NotEmpty.into());
        }
        if layout.len() != self.cfg.slots as usize {
            return Err(BulkLoadError::LayoutWidth {
                got: layout.len(),
                expected: self.cfg.slots,
            }
            .into());
        }
        // Validate global order and per-slot bounds before mutating.
        let mut prev: Option<K> = None;
        let mut index = 0usize;
        let mut total = 0u64;
        for (s, slot_recs) in layout.iter().enumerate() {
            if slot_recs.len() as u64 > self.cfg.slot_max {
                return Err(BulkLoadError::SlotOverflow {
                    slot: s as u32,
                    len: slot_recs.len(),
                    max: self.cfg.slot_max,
                }
                .into());
            }
            for (k, _) in slot_recs {
                if let Some(p) = prev {
                    if p >= *k {
                        return Err(BulkLoadError::NotSorted { index }.into());
                    }
                }
                prev = Some(*k);
                index += 1;
                total += 1;
            }
        }
        if total > self.capacity() {
            return Err(BulkLoadError::TooMany {
                records: total,
                capacity: self.capacity(),
            }
            .into());
        }
        // Enforce Theorem 5.5's BALANCE precondition before touching the
        // store, using the calibrator alone (counts suffice); on rejection
        // the calibrator is reset and the file stays untouched.
        for (s, slot_recs) in layout.iter().enumerate() {
            let min = slot_recs.first().map(|(k, _)| *k);
            self.cal.set_leaf_raw(s as u32, slot_recs.len() as u64, min);
        }
        self.cal.recompute_subtree(NodeId::ROOT);
        if let Some(bad) = self
            .cal
            .all_nodes()
            .into_iter()
            .find(|&n| self.cal.p_gt(n, 3))
        {
            for s in 0..self.cfg.slots {
                self.cal.set_leaf_raw(s, 0, None);
            }
            self.cal.recompute_subtree(NodeId::ROOT);
            return Err(BulkLoadError::Unbalanced { node: bad.0 }.into());
        }
        for (s, slot_recs) in layout.into_iter().enumerate() {
            let recs: Vec<Record<K, V>> = slot_recs
                .into_iter()
                .map(|(k, v)| Record::new(k, v))
                .collect();
            self.store.replace(s as u32, recs);
        }
        self.post_load_activation_scan();
        Ok(())
    }

    /// Writes `records` evenly across the `width` slots starting at `lo`
    /// (slot `lo+i` receives records `[n·i/width, n·(i+1)/width)`) and
    /// refreshes the touched leaves. The shared kernel of every offline
    /// redistribution: bulk load, CONTROL 1's step B, vacuum, merge, retain.
    /// Counters above the leaves are the caller's to recompute.
    pub(crate) fn respread(&mut self, records: Vec<Record<K, V>>, lo: u32, width: u32) {
        let n = records.len() as u64;
        let w = u64::from(width);
        let mut rest = records;
        for i in (0..width).rev() {
            let start = (n * u64::from(i) / w) as usize;
            let chunk = rest.split_off(start);
            let slot = lo + i;
            self.store.replace(slot, chunk);
            self.cal
                .set_leaf_raw(slot, self.store.len(slot) as u64, self.store.min_key(slot));
        }
    }

    /// Clears every warning flag and re-derives a legal flag state — the
    /// epilogue of whole-file offline passes, whose even spread invalidates
    /// any in-flight evolution.
    pub(crate) fn reset_flags_after_offline_pass(&mut self) {
        for n in self.cal.all_nodes() {
            self.cal.set_warning(n, false);
        }
        self.post_load_activation_scan();
    }

    /// After a bulk load, raise warnings wherever Fact 5.1(b) demands it so
    /// the flag state is legal for the first command (shallowest first, as
    /// in step 3).
    pub(crate) fn post_load_activation_scan(&mut self) {
        if self.cfg.algorithm != Algorithm::Control2 {
            return;
        }
        let mut nodes = self.cal.all_nodes();
        nodes.sort_by_key(|n| n.depth());
        for n in nodes {
            if n != NodeId::ROOT && !self.cal.is_warned(n) && self.cal.p_ge(n, 2) {
                self.activate(n);
            }
        }
    }

    // ------------------------------------------------------------------
    // Rebuilding (extension: the paper fixes M; real deployments grow).
    // ------------------------------------------------------------------

    /// Drains this file into a new one with a different configuration,
    /// spreading the records uniformly — the standard answer to capacity
    /// exhaustion (`DsfError::CapacityExceeded`).
    ///
    /// Charges a full sequential read of the old file plus a full
    /// sequential write of the new one (`O(M)` page accesses — rebuilds are
    /// outside the per-command worst-case guarantee, exactly as in the
    /// paper, which fixes `M` up front).
    pub fn rebuild_into(mut self, config: DenseFileConfig) -> Result<DenseFile<K, V>, DsfError> {
        // Validate the destination before draining anything: a failed
        // rebuild must not cost the caller their data.
        let resolved = config.resolve()?;
        if resolved.capacity() < self.len() {
            return Err(DsfError::BulkLoad(crate::error::BulkLoadError::TooMany {
                records: self.len(),
                capacity: resolved.capacity(),
            }));
        }
        let mut all: Vec<(K, V)> = Vec::with_capacity(self.len() as usize);
        for s in 0..self.cfg.slots {
            for rec in self.store.take_all(s) {
                let (k, v) = rec.into_parts();
                all.push((k, v));
            }
        }
        let mut new = DenseFile::new(config)?;
        new.bulk_load(all)?;
        Ok(new)
    }
}

/// Pre-command snapshot of the maintenance counters, captured only while
/// the global telemetry spine is enabled (see [`DenseFile::insert`]).
struct TelPre {
    /// `Some` only when this command was sampled for a span.
    start: Option<std::time::Instant>,
    shifts: u64,
    records_shifted: u64,
    activations: u64,
    rollbacks: u64,
    flags_lowered: u64,
    redistributions: u64,
}

/// Pre-command state for one flight-recorded command. `Some` only when a
/// `CommandBegin` frame was actually recorded, so the cancel/end calls are
/// never issued against a stale sequence number from an earlier command.
struct FlightCmd {
    start: std::time::Instant,
    shifts: u64,
}

/// Corruption handle returned by [`DenseFile::audit`].
///
/// Grants raw mutable access to the store and calibrator so invariant tests
/// can fabricate precisely the inconsistency they want to see detected.
/// **Never use outside tests and checkers** — no method here maintains any
/// file invariant or charges page accesses.
pub struct Audit<'a, K: Key, V> {
    file: &'a mut DenseFile<K, V>,
}

impl<K: Key, V> Audit<'_, K, V> {
    /// The raw store, mutably.
    pub fn store_mut(&mut self) -> &mut PagedStore<K, V> {
        &mut self.file.store
    }

    /// The raw calibrator, mutably.
    pub fn calibrator_mut(&mut self) -> &mut Calibrator<K> {
        &mut self.file.cal
    }

    /// Replaces the records of `slot` verbatim (no ordering or capacity
    /// checks), then resyncs the calibrator's counters and cached minima so
    /// the *only* inconsistency left is whatever the new contents themselves
    /// violate — the way to fabricate a pure store-level corruption
    /// (unsorted slot, cross-slot disorder, overfull slot) without dragging
    /// `CountMismatch`/`MinKeyMismatch` noise along.
    pub fn corrupt_slot(&mut self, slot: u32, recs: Vec<(K, V)>) {
        let recs: Vec<Record<K, V>> = recs.into_iter().map(|(k, v)| Record::new(k, v)).collect();
        self.file.store.corrupt_slot_for_audit(slot, recs);
        let count = self.file.store.len(slot) as u64;
        let min = self.file.store.min_key(slot);
        self.file.cal.set_leaf_raw(slot, count, min);
        self.file.cal.recompute_subtree(NodeId::ROOT);
    }
}

impl<K: Key, V: std::fmt::Debug> std::fmt::Debug for DenseFile<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseFile")
            .field("slots", &self.cfg.slots)
            .field("k", &self.cfg.k)
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("algorithm", &self.cfg.algorithm)
            .finish_non_exhaustive()
    }
}
