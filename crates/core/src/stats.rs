//! Per-command maintenance statistics.
//!
//! [`dsf_pagestore::IoStats`] counts raw page accesses; this module
//! attributes them to insert/delete commands and tracks how the maintenance
//! machinery behaved — the quantities the paper's worst-case theorem is
//! about (`max_accesses` per command) plus diagnostic counters for every
//! interesting event inside CONTROL 1 and CONTROL 2.

/// Histogram of per-command page accesses in power-of-two buckets.
///
/// Bucket `i` counts commands whose access total `a` satisfies
/// `2^(i-1) < a ≤ 2^i` (bucket 0 counts zero-access commands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessHistogram {
    buckets: [u64; 33],
}

impl Default for AccessHistogram {
    fn default() -> Self {
        AccessHistogram { buckets: [0; 33] }
    }
}

impl AccessHistogram {
    /// Records one command with `accesses` page accesses.
    pub fn record(&mut self, accesses: u64) {
        let b = if accesses == 0 {
            0
        } else {
            64 - (accesses - 1).leading_zeros().min(63)
        } as usize;
        self.buckets[b.min(32)] += 1;
    }

    /// `(upper_bound, count)` for every non-empty bucket.
    pub fn non_empty(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i.min(63) }, c))
            .collect()
    }

    /// Raw per-bucket counts (bucket 0 = zero accesses, bucket `i` =
    /// `(2^(i-1), 2^i]`, bucket 32 = catch-all). The layout matches
    /// `dsf-telemetry`'s histogram buckets exactly, which is what lets the
    /// exported `dsf_command_page_accesses` series be reconciled
    /// bucket-for-bucket against a replayed [`OpStats`].
    pub fn bucket_counts(&self) -> [u64; 33] {
        self.buckets
    }

    /// Total commands recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds every bucket of `other` into `self` (saturating).
    pub fn merge(&mut self, other: &AccessHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }
}

/// Counters describing the life of a dense sequential file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Structural commands executed (inserts that added a record, deletes
    /// that removed one). Pure lookups and value replacements are excluded.
    pub commands: u64,
    /// Page accesses attributed to those commands.
    pub total_accesses: u64,
    /// The worst single command — the paper's headline quantity.
    pub max_accesses: u64,
    /// Accesses of the most recent command.
    pub last_accesses: u64,
    /// Distribution of per-command accesses.
    pub histogram: AccessHistogram,

    /// CONTROL 2: SHIFT invocations.
    pub shifts: u64,
    /// CONTROL 2: SHIFTs that moved no records because an `UP(v)` node was
    /// already at its `g(·,0)` threshold (they still advance `DEST`).
    pub empty_shifts: u64,
    /// CONTROL 2: SHIFTs that found no non-empty source page (a defensive
    /// no-op; stays zero for in-contract parameters — see DESIGN.md §3.6).
    pub no_source_shifts: u64,
    /// CONTROL 2: step-4 iterations skipped because no node was warned.
    pub idle_steps: u64,
    /// CONTROL 2: ACTIVATE calls.
    pub activations: u64,
    /// CONTROL 2: roll-back rule applications inside ACTIVATE.
    pub rollbacks: u64,
    /// CONTROL 2: warning flags lowered (steps 2 and 4c).
    pub flags_lowered: u64,
    /// CONTROL 2: records moved by SHIFT, total.
    pub records_shifted: u64,

    /// CONTROL 1: one-shot redistributions performed.
    pub redistributions: u64,
    /// CONTROL 1: total slots rewritten by redistributions.
    pub redistributed_slots: u64,
}

impl std::fmt::Display for OpStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "commands: {} (mean {:.2} / p-last {} / worst {} page accesses)",
            self.commands,
            self.mean_accesses(),
            self.last_accesses,
            self.max_accesses
        )?;
        writeln!(
            f,
            "shifts: {} ({} empty, {} no-source, {} idle steps), {} records moved",
            self.shifts,
            self.empty_shifts,
            self.no_source_shifts,
            self.idle_steps,
            self.records_shifted
        )?;
        writeln!(
            f,
            "flags: {} activations, {} lowered, {} roll-backs",
            self.activations, self.flags_lowered, self.rollbacks
        )?;
        if self.redistributions > 0 {
            writeln!(
                f,
                "redistributions: {} over {} slots",
                self.redistributions, self.redistributed_slots
            )?;
        }
        write!(f, "access histogram (≤bound: count):")?;
        for (bound, count) in self.histogram.non_empty() {
            write!(f, " {bound}:{count}")?;
        }
        Ok(())
    }
}

impl OpStats {
    /// Records the completion of one structural command.
    ///
    /// Saturating on the cumulative counters: a file can outlive `u64`
    /// wrap-around horizons on `total_accesses` in principle (merged
    /// per-shard stats compound the risk), and a pinned-at-max counter is a
    /// far better failure mode for a measurement instrument than a silent
    /// wrap that corrupts the mean.
    pub fn record_command(&mut self, accesses: u64) {
        self.commands = self.commands.saturating_add(1);
        self.total_accesses = self.total_accesses.saturating_add(accesses);
        self.last_accesses = accesses;
        self.max_accesses = self.max_accesses.max(accesses);
        self.histogram.record(accesses);
    }

    /// Mean page accesses per command (0 when no commands ran).
    pub fn mean_accesses(&self) -> f64 {
        if self.commands == 0 {
            0.0
        } else {
            self.total_accesses as f64 / self.commands as f64
        }
    }

    /// Folds `other` into `self`, as if the two instrument streams had been
    /// recorded by one file. Sums and histograms add (saturating), extremes
    /// take the max; `last_accesses` keeps `other`'s value when `other` has
    /// seen any command (the merged-in stream is treated as the more
    /// recent). This is how `dsf-concurrent` aggregates per-shard stats into
    /// one whole-structure view.
    pub fn merge(&mut self, other: &OpStats) {
        self.commands = self.commands.saturating_add(other.commands);
        self.total_accesses = self.total_accesses.saturating_add(other.total_accesses);
        self.max_accesses = self.max_accesses.max(other.max_accesses);
        if other.commands > 0 {
            self.last_accesses = other.last_accesses;
        }
        self.histogram.merge(&other.histogram);

        self.shifts = self.shifts.saturating_add(other.shifts);
        self.empty_shifts = self.empty_shifts.saturating_add(other.empty_shifts);
        self.no_source_shifts = self.no_source_shifts.saturating_add(other.no_source_shifts);
        self.idle_steps = self.idle_steps.saturating_add(other.idle_steps);
        self.activations = self.activations.saturating_add(other.activations);
        self.rollbacks = self.rollbacks.saturating_add(other.rollbacks);
        self.flags_lowered = self.flags_lowered.saturating_add(other.flags_lowered);
        self.records_shifted = self.records_shifted.saturating_add(other.records_shifted);
        self.redistributions = self.redistributions.saturating_add(other.redistributions);
        self.redistributed_slots = self
            .redistributed_slots
            .saturating_add(other.redistributed_slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_command_tracks_extremes_and_mean() {
        let mut s = OpStats::default();
        s.record_command(4);
        s.record_command(10);
        s.record_command(1);
        assert_eq!(s.commands, 3);
        assert_eq!(s.total_accesses, 15);
        assert_eq!(s.max_accesses, 10);
        assert_eq!(s.last_accesses, 1);
        assert!((s.mean_accesses() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_no_commands_is_zero() {
        assert_eq!(OpStats::default().mean_accesses(), 0.0);
    }

    #[test]
    fn display_summarizes_all_sections() {
        let mut s = OpStats::default();
        s.record_command(3);
        s.record_command(90);
        s.shifts = 7;
        s.activations = 2;
        s.redistributions = 1;
        s.redistributed_slots = 64;
        let text = s.to_string();
        assert!(text.contains("commands: 2"));
        assert!(text.contains("worst 90"));
        assert!(text.contains("shifts: 7"));
        assert!(text.contains("redistributions: 1 over 64"));
        assert!(text.contains("histogram"));
    }

    #[test]
    fn record_command_saturates_instead_of_wrapping() {
        let mut s = OpStats {
            commands: u64::MAX,
            total_accesses: u64::MAX - 1,
            ..OpStats::default()
        };
        s.record_command(5);
        assert_eq!(s.commands, u64::MAX);
        assert_eq!(s.total_accesses, u64::MAX);
        assert_eq!(s.last_accesses, 5);
    }

    #[test]
    fn merge_folds_two_streams() {
        let mut a = OpStats::default();
        a.record_command(4);
        a.record_command(16);
        a.shifts = 3;
        a.records_shifted = 12;

        let mut b = OpStats::default();
        b.record_command(90);
        b.shifts = 2;
        b.activations = 1;

        a.merge(&b);
        assert_eq!(a.commands, 3);
        assert_eq!(a.total_accesses, 110);
        assert_eq!(a.max_accesses, 90);
        assert_eq!(a.last_accesses, 90);
        assert_eq!(a.shifts, 5);
        assert_eq!(a.records_shifted, 12);
        assert_eq!(a.activations, 1);
        assert_eq!(a.histogram.total(), 3);
    }

    #[test]
    fn merge_with_empty_other_keeps_last_accesses() {
        let mut a = OpStats::default();
        a.record_command(7);
        a.merge(&OpStats::default());
        assert_eq!(a.last_accesses, 7);
        assert_eq!(a.commands, 1);
    }

    #[test]
    fn bucket_counts_round_trips_non_empty() {
        let mut h = AccessHistogram::default();
        h.record(0);
        h.record(5);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[3], 1); // 5 ∈ (4, 8]
        assert_eq!(counts.iter().sum::<u64>(), h.total());
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = AccessHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(1000);
        // 0 → bucket 0; 1,2 → (0,2]; 3,4 → (2,4]; 1000 → (512,1024].
        assert_eq!(h.total(), 6);
        let map: std::collections::HashMap<u64, u64> = h.non_empty().into_iter().collect();
        assert_eq!(map[&0], 1);
        assert_eq!(map[&2], 2);
        assert_eq!(map[&4], 2);
        assert_eq!(map[&1024], 1);
        assert_eq!(map.len(), 4);
    }
}
