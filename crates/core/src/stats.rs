//! Per-command maintenance statistics.
//!
//! [`dsf_pagestore::IoStats`] counts raw page accesses; this module
//! attributes them to insert/delete commands and tracks how the maintenance
//! machinery behaved — the quantities the paper's worst-case theorem is
//! about (`max_accesses` per command) plus diagnostic counters for every
//! interesting event inside CONTROL 1 and CONTROL 2.

/// Histogram of per-command page accesses in power-of-two buckets.
///
/// Bucket `i` counts commands whose access total `a` satisfies
/// `2^(i-1) < a ≤ 2^i` (bucket 0 counts zero-access commands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessHistogram {
    buckets: [u64; 33],
}

impl Default for AccessHistogram {
    fn default() -> Self {
        AccessHistogram { buckets: [0; 33] }
    }
}

impl AccessHistogram {
    /// Records one command with `accesses` page accesses.
    pub fn record(&mut self, accesses: u64) {
        let b = if accesses == 0 {
            0
        } else {
            64 - (accesses - 1).leading_zeros().min(63)
        } as usize;
        self.buckets[b.min(32)] += 1;
    }

    /// `(upper_bound, count)` for every non-empty bucket.
    pub fn non_empty(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i.min(63) }, c))
            .collect()
    }

    /// Total commands recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// Counters describing the life of a dense sequential file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Structural commands executed (inserts that added a record, deletes
    /// that removed one). Pure lookups and value replacements are excluded.
    pub commands: u64,
    /// Page accesses attributed to those commands.
    pub total_accesses: u64,
    /// The worst single command — the paper's headline quantity.
    pub max_accesses: u64,
    /// Accesses of the most recent command.
    pub last_accesses: u64,
    /// Distribution of per-command accesses.
    pub histogram: AccessHistogram,

    /// CONTROL 2: SHIFT invocations.
    pub shifts: u64,
    /// CONTROL 2: SHIFTs that moved no records because an `UP(v)` node was
    /// already at its `g(·,0)` threshold (they still advance `DEST`).
    pub empty_shifts: u64,
    /// CONTROL 2: SHIFTs that found no non-empty source page (a defensive
    /// no-op; stays zero for in-contract parameters — see DESIGN.md §3.6).
    pub no_source_shifts: u64,
    /// CONTROL 2: step-4 iterations skipped because no node was warned.
    pub idle_steps: u64,
    /// CONTROL 2: ACTIVATE calls.
    pub activations: u64,
    /// CONTROL 2: roll-back rule applications inside ACTIVATE.
    pub rollbacks: u64,
    /// CONTROL 2: warning flags lowered (steps 2 and 4c).
    pub flags_lowered: u64,
    /// CONTROL 2: records moved by SHIFT, total.
    pub records_shifted: u64,

    /// CONTROL 1: one-shot redistributions performed.
    pub redistributions: u64,
    /// CONTROL 1: total slots rewritten by redistributions.
    pub redistributed_slots: u64,
}

impl std::fmt::Display for OpStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "commands: {} (mean {:.2} / p-last {} / worst {} page accesses)",
            self.commands,
            self.mean_accesses(),
            self.last_accesses,
            self.max_accesses
        )?;
        writeln!(
            f,
            "shifts: {} ({} empty, {} no-source, {} idle steps), {} records moved",
            self.shifts,
            self.empty_shifts,
            self.no_source_shifts,
            self.idle_steps,
            self.records_shifted
        )?;
        writeln!(
            f,
            "flags: {} activations, {} lowered, {} roll-backs",
            self.activations, self.flags_lowered, self.rollbacks
        )?;
        if self.redistributions > 0 {
            writeln!(
                f,
                "redistributions: {} over {} slots",
                self.redistributions, self.redistributed_slots
            )?;
        }
        write!(f, "access histogram (≤bound: count):")?;
        for (bound, count) in self.histogram.non_empty() {
            write!(f, " {bound}:{count}")?;
        }
        Ok(())
    }
}

impl OpStats {
    /// Records the completion of one structural command.
    pub fn record_command(&mut self, accesses: u64) {
        self.commands += 1;
        self.total_accesses += accesses;
        self.last_accesses = accesses;
        self.max_accesses = self.max_accesses.max(accesses);
        self.histogram.record(accesses);
    }

    /// Mean page accesses per command (0 when no commands ran).
    pub fn mean_accesses(&self) -> f64 {
        if self.commands == 0 {
            0.0
        } else {
            self.total_accesses as f64 / self.commands as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_command_tracks_extremes_and_mean() {
        let mut s = OpStats::default();
        s.record_command(4);
        s.record_command(10);
        s.record_command(1);
        assert_eq!(s.commands, 3);
        assert_eq!(s.total_accesses, 15);
        assert_eq!(s.max_accesses, 10);
        assert_eq!(s.last_accesses, 1);
        assert!((s.mean_accesses() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_no_commands_is_zero() {
        assert_eq!(OpStats::default().mean_accesses(), 0.0);
    }

    #[test]
    fn display_summarizes_all_sections() {
        let mut s = OpStats::default();
        s.record_command(3);
        s.record_command(90);
        s.shifts = 7;
        s.activations = 2;
        s.redistributions = 1;
        s.redistributed_slots = 64;
        let text = s.to_string();
        assert!(text.contains("commands: 2"));
        assert!(text.contains("worst 90"));
        assert!(text.contains("shifts: 7"));
        assert!(text.contains("redistributions: 1 over 64"));
        assert!(text.contains("histogram"));
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = AccessHistogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(1000);
        // 0 → bucket 0; 1,2 → (0,2]; 3,4 → (2,4]; 1000 → (512,1024].
        assert_eq!(h.total(), 6);
        let map: std::collections::HashMap<u64, u64> = h.non_empty().into_iter().collect();
        assert_eq!(map[&0], 1);
        assert_eq!(map[&2], 2);
        assert_eq!(map[&4], 2);
        assert_eq!(map[&1024], 1);
        assert_eq!(map.len(), 4);
    }
}
