//! Explicit offline maintenance: vacuum and bulk merge.
//!
//! The paper maintains only the *upper* density bounds — deletions may
//! leave the record distribution arbitrarily lopsided, which is legal but
//! burns the headroom Theorem 5.5's uniform initial condition provides:
//! a region left dense by history absorbs fewer future insertions before
//! its warnings fire. Real deployments interleave the paper's per-command
//! maintenance with occasional offline passes; this module provides the two
//! standard ones, both `O(M)` by design and charged honestly:
//!
//! * [`DenseFile::vacuum`] — redistribute every record evenly, restoring
//!   the uniform distribution Theorem 5.5 starts from (maximum insert
//!   headroom everywhere);
//! * [`DenseFile::merge_bulk`] — merge a sorted batch of new records in one
//!   sequential pass (the classical "batch update" of sequential-file
//!   practice, cheaper per record than replaying the batch as commands when
//!   the batch is a large fraction of the file).

use dsf_pagestore::{Key, Record};

use crate::calibrator::NodeId;
use crate::error::{BulkLoadError, DsfError};
use crate::file::DenseFile;

impl<K: Key, V> DenseFile<K, V> {
    /// Evenly redistributes every record across the whole file — a full
    /// sequential rewrite (`O(M)` page accesses, counted), after which every
    /// calibrator node sits at the global density (Theorem 5.5's initial
    /// condition) and all warning flags clear. Note the trade: even spread
    /// maximizes insert headroom but, at low fill, spreads records over
    /// more pages than history had them on — scans skip empty pages via
    /// calibrator metadata, so in the pure page-access model a vacuum can
    /// lengthen scans while it shortens future update work.
    pub fn vacuum(&mut self) {
        self.redistribute(NodeId::ROOT);
        // Redistribution leaves every node at (near-)uniform density; any
        // warning state is now stale.
        self.reset_flags_after_offline_pass();
    }

    /// Merges a strictly-ascending batch of records into the file in one
    /// sequential pass and redistributes evenly. Existing keys take the new
    /// value. `O(M + batch)` page accesses, counted like any offline build.
    ///
    /// # Errors
    ///
    /// Rejects unsorted batches and batches that would exceed capacity; the
    /// file is unchanged on error.
    /// ```
    /// # use dsf_core::{DenseFile, DenseFileConfig};
    /// let mut f: DenseFile<u64, u64> =
    ///     DenseFile::new(DenseFileConfig::control2(16, 4, 24)).unwrap();
    /// f.bulk_load((0..20u64).map(|k| (k * 10, k))).unwrap();
    /// f.merge_bulk((0..10u64).map(|k| (k * 10 + 5, 999))).unwrap();
    /// assert_eq!(f.len(), 30);
    /// assert_eq!(f.get(&15), Some(&999));
    /// ```
    pub fn merge_bulk<I>(&mut self, batch: I) -> Result<(), DsfError>
    where
        I: IntoIterator<Item = (K, V)>,
    {
        let mut incoming: Vec<Record<K, V>> = Vec::new();
        for (i, (k, v)) in batch.into_iter().enumerate() {
            if let Some(prev) = incoming.last() {
                if prev.key >= k {
                    return Err(BulkLoadError::NotSorted { index: i }.into());
                }
            }
            incoming.push(Record::new(k, v));
        }
        // Upper-bound check before touching anything (replacements can only
        // make the merged set smaller).
        if self.len() + incoming.len() as u64 > self.capacity() {
            // Exact size requires the merge; pre-check cheaply via ranks.
            let replacements = incoming
                .iter()
                .filter(|r| self.contains_key(&r.key))
                .count();
            let merged = self.len() + (incoming.len() - replacements) as u64;
            if merged > self.capacity() {
                return Err(DsfError::CapacityExceeded {
                    capacity: self.capacity(),
                });
            }
        }

        // Drain the file (sequential read), merge, respread (sequential write).
        let mut existing: Vec<Record<K, V>> = Vec::new();
        for s in 0..self.cfg.slots {
            existing.append(&mut self.store.take_all(s));
        }
        let mut merged: Vec<Record<K, V>> = Vec::with_capacity(existing.len() + incoming.len());
        let (mut a, mut b) = (
            existing.into_iter().peekable(),
            incoming.into_iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => match x.key.cmp(&y.key) {
                    std::cmp::Ordering::Less => merged.push(a.next().expect("peeked")),
                    std::cmp::Ordering::Greater => merged.push(b.next().expect("peeked")),
                    std::cmp::Ordering::Equal => {
                        a.next(); // new value wins
                        merged.push(b.next().expect("peeked"));
                    }
                },
                (Some(_), None) => merged.push(a.next().expect("peeked")),
                (None, Some(_)) => merged.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        debug_assert!(merged.len() as u64 <= self.capacity());

        // Even spread, exactly like bulk_load.
        self.respread(merged, 0, self.cfg.slots);
        self.cal.recompute_subtree(NodeId::ROOT);
        self.reset_flags_after_offline_pass();
        Ok(())
    }
}

impl<K: Key, V> DenseFile<K, V> {
    /// Keeps only the records for which `keep` returns `true`, then spreads
    /// the survivors evenly — one sequential pass (`O(M + N)` page
    /// accesses), the offline analogue of deleting record by record.
    /// Returns the number of records removed.
    ///
    /// ```
    /// # use dsf_core::{DenseFile, DenseFileConfig};
    /// let mut f: DenseFile<u64, u64> =
    ///     DenseFile::new(DenseFileConfig::control2(16, 4, 24)).unwrap();
    /// f.bulk_load((0..30u64).map(|k| (k, k))).unwrap();
    /// let removed = f.retain(|k, _| k % 2 == 0);
    /// assert_eq!(removed, 15);
    /// assert!(f.iter().all(|(k, _)| k % 2 == 0));
    /// ```
    pub fn retain<F: FnMut(&K, &V) -> bool>(&mut self, mut keep: F) -> u64 {
        let mut kept: Vec<Record<K, V>> = Vec::with_capacity(self.len() as usize);
        let mut removed = 0u64;
        for s in 0..self.cfg.slots {
            for rec in self.store.take_all(s) {
                if keep(&rec.key, &rec.value) {
                    kept.push(rec);
                } else {
                    removed += 1;
                }
            }
        }
        self.respread(kept, 0, self.cfg.slots);
        self.cal.recompute_subtree(NodeId::ROOT);
        self.reset_flags_after_offline_pass();
        removed
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DenseFileConfig;
    use crate::file::DenseFile;

    fn sparse_file() -> DenseFile<u64, u64> {
        let mut f = DenseFile::new(DenseFileConfig::control2(64, 8, 40)).unwrap();
        f.bulk_load((0..400u64).map(|i| (i * 5, i))).unwrap();
        // Delete three quarters, concentrated in the middle.
        for i in 50..350u64 {
            f.remove(&(i * 5));
        }
        f
    }

    #[test]
    fn vacuum_restores_uniformity_and_insert_headroom() {
        let mut f = sparse_file();
        let n_before: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        // History left the ends dense: hammering the dense end costs real
        // maintenance work.
        let mut before_vacuum: DenseFile<u64, u64> = {
            let mut bytes = Vec::new();
            f.write_snapshot(&mut bytes).unwrap();
            DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap()
        };
        let room = 200usize;
        for k in dsf_workloads_hammer(room) {
            before_vacuum.insert(k, 0).unwrap();
        }
        let unvacuumed_work = before_vacuum.op_stats().records_shifted;

        f.vacuum();
        f.check_invariants().unwrap();
        let n_after: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        assert_eq!(n_before, n_after, "vacuum must not change contents");
        // Even spread: all slot counts within 1 of each other.
        let counts = f.slot_counts();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "even spread expected, got {min}..{max}");
        // The same hammer against the vacuumed file shifts no more records
        // than against the lopsided one (uniformity = maximal headroom).
        for k in dsf_workloads_hammer(room) {
            f.insert(k, 0).unwrap();
        }
        assert!(
            f.op_stats().records_shifted <= unvacuumed_work,
            "vacuumed file must absorb the hammer at least as cheaply: {} vs {}",
            f.op_stats().records_shifted,
            unvacuumed_work
        );
        f.check_invariants().unwrap();
    }

    /// Hammer keys aimed at the dense low end of `sparse_file`'s keyspace.
    fn dsf_workloads_hammer(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| 1 + n as u64 - i).collect()
    }

    #[test]
    fn vacuum_on_empty_and_full_files() {
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(16, 4, 24)).unwrap();
        f.vacuum();
        f.check_invariants().unwrap();
        for k in 0..f.capacity() {
            f.insert(k, k).unwrap();
        }
        f.vacuum();
        f.check_invariants().unwrap();
        assert_eq!(f.len(), f.capacity());
    }

    #[test]
    fn merge_bulk_interleaves_and_replaces() {
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(32, 8, 40)).unwrap();
        f.bulk_load((0..100u64).map(|i| (i * 10, i))).unwrap();
        // Batch: 50 new keys between the existing ones + 10 replacements.
        let batch: Vec<(u64, u64)> = (0..50u64)
            .map(|i| (i * 10 + 5, 7777))
            .chain((0..10u64).map(|i| (i * 10, 9999)))
            .collect();
        let mut batch = batch;
        batch.sort_unstable();
        f.merge_bulk(batch).unwrap();
        f.check_invariants().unwrap();
        assert_eq!(f.len(), 150);
        assert_eq!(f.get(&0), Some(&9999)); // replaced
        assert_eq!(f.get(&5), Some(&7777)); // merged in
        assert_eq!(f.get(&990), Some(&99)); // untouched
        let keys: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_bulk_rejects_bad_batches() {
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        f.bulk_load((0..10u64).map(|i| (i, i))).unwrap();
        assert!(f.merge_bulk([(5u64, 0u64), (3, 0)]).is_err());
        assert_eq!(f.len(), 10, "file unchanged after rejected merge");
        // Over capacity (capacity 16, holding 10, adding 7 distinct).
        assert!(f.merge_bulk((100..107u64).map(|k| (k, k))).is_err());
        assert_eq!(f.len(), 10);
        // Replacements don't count against capacity.
        f.merge_bulk((0..6u64).map(|k| (k, k + 100))).unwrap();
        assert_eq!(f.len(), 10);
        assert_eq!(f.get(&3), Some(&103));
        f.check_invariants().unwrap();
    }

    #[test]
    fn retain_filters_and_respreads() {
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(32, 8, 40)).unwrap();
        f.bulk_load((0..200u64).map(|i| (i, i))).unwrap();
        let removed = f.retain(|k, _| k % 3 == 0);
        assert_eq!(removed, 133);
        assert_eq!(f.len(), 67);
        assert!(f.iter().all(|(k, _)| k % 3 == 0));
        f.check_invariants().unwrap();
        // Survivors spread evenly.
        let counts = f.slot_counts();
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
        // Retain-nothing and retain-everything edges.
        assert_eq!(f.retain(|_, _| true), 0);
        assert_eq!(f.retain(|_, _| false), 67);
        assert!(f.is_empty());
        f.check_invariants().unwrap();
    }

    #[test]
    fn updates_keep_working_after_offline_maintenance() {
        let mut f = sparse_file();
        f.vacuum();
        f.merge_bulk((0..50u64).map(|i| (i * 7 + 1_000_000, i)))
            .unwrap();
        for i in 0..100u64 {
            f.insert(2_000_000 + i, i).unwrap();
        }
        for i in 0..25u64 {
            assert!(f.remove(&(i * 7 + 1_000_000)).is_some());
        }
        f.check_invariants().unwrap();
    }
}
