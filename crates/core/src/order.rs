//! Order-statistic queries over the calibrator's rank counters.
//!
//! The calibrator stores, at every node, the number of records in its page
//! range — the paper uses these `N_v` counters only to police densities,
//! but they make the file an *order-statistic* structure for free, in the
//! spirit of the sparse-table/priority-queue lineage the paper builds on
//! (Itai-Konheim-Rodeh). All tree navigation is in-memory (uncounted); only
//! the final record-page touch is charged, like the paper's step 1.

use dsf_pagestore::Key;

use crate::calibrator::NodeId;
use crate::file::DenseFile;

impl<K: Key, V> DenseFile<K, V> {
    /// Number of records with keys strictly less than `key` — the key's
    /// *rank*. Charges the page probe of one slot search.
    ///
    /// ```
    /// # use dsf_core::{DenseFile, DenseFileConfig};
    /// let mut f: DenseFile<u64, ()> =
    ///     DenseFile::new(DenseFileConfig::control2(32, 4, 24)).unwrap();
    /// f.bulk_load((0..100u64).map(|k| (k * 2, ()))).unwrap();
    /// assert_eq!(f.rank(&0), 0);
    /// assert_eq!(f.rank(&100), 50);  // 0,2,...,98 are below
    /// assert_eq!(f.rank(&101), 51);  // ...and 100 itself
    /// ```
    pub fn rank(&self, key: &K) -> u64 {
        if self.is_empty() {
            return 0;
        }
        // Descend the calibrator accumulating left-sibling counts.
        let mut n = NodeId::ROOT;
        let mut before = 0u64;
        while let Some((l, r)) = self.cal.children(n) {
            let go_right = self.cal.count(r) > 0 && self.cal.min_key(r).is_some_and(|m| m <= *key);
            if go_right {
                before += self.cal.count(l);
                n = r;
            } else {
                n = l;
            }
        }
        let slot = self.cal.range(n).0;
        let within = match self.store.search(slot, key) {
            Ok(i) => i,
            Err(i) => i,
        };
        before + within as u64
    }

    /// `(rank, is-resident)` from a single search — the membership bit falls
    /// out of the same probe that computes the rank.
    fn rank_and_contains(&self, key: &K) -> (u64, bool) {
        if self.is_empty() {
            return (0, false);
        }
        let mut n = NodeId::ROOT;
        let mut before = 0u64;
        while let Some((l, r)) = self.cal.children(n) {
            let go_right = self.cal.count(r) > 0 && self.cal.min_key(r).is_some_and(|m| m <= *key);
            if go_right {
                before += self.cal.count(l);
                n = r;
            } else {
                n = l;
            }
        }
        let slot = self.cal.range(n).0;
        match self.store.search(slot, key) {
            Ok(i) => (before + i as u64, true),
            Err(i) => (before + i as u64, false),
        }
    }

    /// The record with exactly `rank` smaller keys (0-based), if any.
    /// Charges one page read.
    ///
    /// ```
    /// # use dsf_core::{DenseFile, DenseFileConfig};
    /// let mut f: DenseFile<u64, ()> =
    ///     DenseFile::new(DenseFileConfig::control2(32, 4, 24)).unwrap();
    /// f.bulk_load((0..100u64).map(|k| (k * 2, ()))).unwrap();
    /// assert_eq!(f.select_nth(50).map(|(k, _)| *k), Some(100)); // the median
    /// assert_eq!(f.select_nth(100), None);
    /// ```
    pub fn select_nth(&self, rank: u64) -> Option<(&K, &V)> {
        if rank >= self.len() {
            return None;
        }
        let mut n = NodeId::ROOT;
        let mut remaining = rank;
        while let Some((l, r)) = self.cal.children(n) {
            let lc = self.cal.count(l);
            if remaining < lc {
                n = l;
            } else {
                remaining -= lc;
                n = r;
            }
        }
        let slot = self.cal.range(n).0;
        let page = (remaining / u64::from(self.cfg.page_capacity)) as u32;
        let recs = self.store.read_page(slot, page.min(self.cfg.k - 1));
        // Index within the page (the last page absorbs any overflow).
        let idx = remaining as usize
            - page.min(self.cfg.k - 1) as usize * self.cfg.page_capacity as usize;
        let rec = &recs[idx];
        Some((&rec.key, &rec.value))
    }

    /// The smallest record. Charges one page read.
    pub fn first(&self) -> Option<(&K, &V)> {
        self.select_nth(0)
    }

    /// The largest record. Charges one page read.
    pub fn last(&self) -> Option<(&K, &V)> {
        self.len().checked_sub(1).and_then(|r| self.select_nth(r))
    }

    /// Removes and returns the smallest record (a full deletion command).
    pub fn pop_first(&mut self) -> Option<(K, V)> {
        let k = *self.first()?.0;
        let v = self.remove(&k).expect("first() returned a resident key");
        Some((k, v))
    }

    /// Removes and returns the largest record (a full deletion command).
    pub fn pop_last(&mut self) -> Option<(K, V)> {
        let k = *self.last()?.0;
        let v = self.remove(&k).expect("last() returned a resident key");
        Some((k, v))
    }

    /// Number of records with keys in `range` — computed from one combined
    /// rank-and-membership probe per bounded endpoint, so it costs at most
    /// two page probes regardless of the range's size.
    ///
    /// ```
    /// # use dsf_core::{DenseFile, DenseFileConfig};
    /// let mut f: DenseFile<u64, ()> =
    ///     DenseFile::new(DenseFileConfig::control2(32, 4, 24)).unwrap();
    /// f.bulk_load((0..100u64).map(|k| (k, ()))).unwrap();
    /// assert_eq!(f.count_range(10..20), 10);
    /// assert_eq!(f.count_range(..), 100);
    /// ```
    pub fn count_range<R: std::ops::RangeBounds<K>>(&self, range: R) -> u64 {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Unbounded => 0,
            Bound::Included(k) => self.rank_and_contains(k).0,
            Bound::Excluded(k) => {
                let (r, present) = self.rank_and_contains(k);
                r + u64::from(present)
            }
        };
        let hi = match range.end_bound() {
            Bound::Unbounded => self.len(),
            Bound::Included(k) => {
                let (r, present) = self.rank_and_contains(k);
                r + u64::from(present)
            }
            Bound::Excluded(k) => self.rank_and_contains(k).0,
        };
        hi.saturating_sub(lo)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DenseFileConfig;
    use crate::file::DenseFile;

    fn loaded() -> DenseFile<u64, u64> {
        let mut f = DenseFile::new(DenseFileConfig::control2(64, 8, 48)).unwrap();
        f.bulk_load((0..300u64).map(|i| (i * 10, i))).unwrap();
        f
    }

    #[test]
    fn rank_counts_strictly_smaller_keys() {
        let f = loaded();
        assert_eq!(f.rank(&0), 0);
        assert_eq!(f.rank(&5), 1); // only key 0 is smaller
        assert_eq!(f.rank(&10), 1);
        assert_eq!(f.rank(&11), 2);
        assert_eq!(f.rank(&2990), 299);
        assert_eq!(f.rank(&2991), 300);
        assert_eq!(f.rank(&u64::MAX), 300);
    }

    #[test]
    fn select_nth_inverts_rank() {
        let f = loaded();
        for r in [0u64, 1, 7, 150, 298, 299] {
            let (k, v) = f.select_nth(r).unwrap();
            assert_eq!(*k, r * 10);
            assert_eq!(*v, r);
            assert_eq!(f.rank(k), r);
        }
        assert_eq!(f.select_nth(300), None);
        assert_eq!(f.select_nth(u64::MAX), None);
    }

    #[test]
    fn rank_select_survive_heavy_updates() {
        let mut f = loaded();
        for i in 0..200u64 {
            f.insert(i * 10 + 5, 999).unwrap();
        }
        for i in (0..300u64).step_by(2) {
            f.remove(&(i * 10));
        }
        f.check_invariants().unwrap();
        // Cross-check against a sorted model.
        let model: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        for (r, k) in model.iter().enumerate() {
            assert_eq!(f.rank(k), r as u64, "rank of {k}");
            assert_eq!(*f.select_nth(r as u64).unwrap().0, *k, "select {r}");
        }
        assert_eq!(f.rank(&u64::MAX), model.len() as u64);
    }

    #[test]
    fn first_last_pop_behave_like_a_priority_queue() {
        let mut f = loaded();
        assert_eq!(f.first().map(|(k, _)| *k), Some(0));
        assert_eq!(f.last().map(|(k, _)| *k), Some(2990));
        assert_eq!(f.pop_first(), Some((0, 0)));
        assert_eq!(f.pop_last(), Some((2990, 299)));
        assert_eq!(f.first().map(|(k, _)| *k), Some(10));
        assert_eq!(f.len(), 298);
        // Drain as a priority queue; output must be sorted.
        let mut prev = 0;
        while let Some((k, _)) = f.pop_first() {
            assert!(k >= prev);
            prev = k;
        }
        assert!(f.is_empty());
        assert_eq!(f.pop_first(), None);
        assert_eq!(f.pop_last(), None);
        f.check_invariants().unwrap();
    }

    #[test]
    fn count_range_matches_scan_counts() {
        let f = loaded();
        for (lo, hi) in [
            (0u64, 100u64),
            (5, 95),
            (250, 251),
            (0, 10_000),
            (995, 1005),
        ] {
            assert_eq!(
                f.count_range(lo..hi),
                f.range(lo..hi).count() as u64,
                "{lo}..{hi}"
            );
            assert_eq!(
                f.count_range(lo..=hi),
                f.range(lo..=hi).count() as u64,
                "{lo}..={hi}"
            );
        }
        assert_eq!(f.count_range(..), 300);
        assert_eq!(f.count_range(4000..), 0);
    }

    #[test]
    fn works_in_macro_block_regime() {
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(64, 6, 8)).unwrap();
        assert!(f.config().k > 1);
        f.bulk_load((0..200u64).map(|i| (i * 3, i))).unwrap();
        for r in [0u64, 50, 100, 199] {
            assert_eq!(*f.select_nth(r).unwrap().0, r * 3);
            assert_eq!(f.rank(&(r * 3)), r);
        }
        assert_eq!(f.count_range(30..=60), 11);
    }

    #[test]
    fn empty_file_order_queries() {
        let f: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        assert_eq!(f.rank(&5), 0);
        assert_eq!(f.select_nth(0), None);
        assert_eq!(f.first(), None);
        assert_eq!(f.last(), None);
        assert_eq!(f.count_range(..), 0);
    }
}
