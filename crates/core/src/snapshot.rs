//! Snapshot persistence: serialize a dense file to bytes and back.
//!
//! A snapshot captures the file's geometry (`M`, `d`, `D`, `J`, `K`,
//! algorithm) and every slot's records in address order, framed by a magic
//! header and an FNV-1a-64 checksum. Loading rebuilds the calibrator from
//! the slot contents and re-runs the activation scan, so the warning-flag
//! state is legal without being persisted (flags and `DEST` pointers are
//! derived bookkeeping; BALANCE — which *is* required of a valid snapshot —
//! holds at the end of every command, hence at every save point, and is
//! re-verified on load).
//!
//! Snapshots are offline operations: they read the store through uncounted
//! access and charge no page accesses, like any bulk build.

use std::io::{Read, Write};

use dsf_pagestore::Key;

use crate::config::{Algorithm, DenseFileConfig, MacroBlocking};
use crate::error::DsfError;
use crate::file::DenseFile;

const MAGIC: &[u8; 4] = b"DSF1";
const VERSION: u32 = 1;

/// Errors raised by snapshot encode/decode.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an unsupported format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The input ended early or a field was malformed.
    Corrupt(&'static str),
    /// The checksum over the payload does not match.
    ChecksumMismatch,
    /// The decoded contents were rejected by the file loader (e.g. the
    /// snapshot violates BALANCE or ordering — a corrupted or forged file).
    Rejected(DsfError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a dense-file snapshot (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (supported: {VERSION})"
                )
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Rejected(e) => write!(f, "snapshot contents rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Fixed-size little-endian encoding for snapshot fields.
///
/// Implemented for the primitive key/value types a dense file typically
/// stores; implement it for your own types to snapshot them.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes a value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError>;
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapshotError> {
    if input.len() < n {
        return Err(SnapshotError::Corrupt("unexpected end of input"));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact length")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Codec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("invalid bool")),
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupt("invalid utf-8"))
    }
}

impl Codec for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        let len = u32::decode(input)? as usize;
        Ok(take(input, len)?.to_vec())
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

impl<const N: usize> Codec for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        let bytes = take(input, N)?;
        Ok(bytes.try_into().expect("exact length"))
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, SnapshotError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => Err(SnapshotError::Corrupt("invalid option tag")),
        }
    }
}

/// FNV-1a 64-bit — the checksum used by every on-disk format in this
/// workspace (snapshots, the WAL, physical images).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<K: Key + Codec, V: Codec> DenseFile<K, V> {
    /// Serializes the file (geometry + contents) to `w`.
    pub fn write_snapshot<W: Write>(&self, w: &mut W) -> Result<(), SnapshotError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        VERSION.encode(&mut buf);
        let alg: u8 = match self.cfg.algorithm {
            Algorithm::Control1 => 1,
            Algorithm::Control2 => 2,
        };
        alg.encode(&mut buf);
        self.cfg.requested_pages.encode(&mut buf);
        // d and D in user units (records per physical page).
        ((self.cfg.slot_min / u64::from(self.cfg.k)) as u32).encode(&mut buf);
        self.cfg.page_capacity.encode(&mut buf);
        self.cfg.j.encode(&mut buf);
        self.cfg.k.encode(&mut buf);
        self.cfg.slots.encode(&mut buf);
        for s in 0..self.cfg.slots {
            let recs = self.store.peek_slot(s);
            (recs.len() as u32).encode(&mut buf);
            for rec in recs {
                rec.key.encode(&mut buf);
                rec.value.encode(&mut buf);
            }
        }
        fnv1a64(&buf).encode(&mut buf);
        w.write_all(&buf)?;
        Ok(())
    }

    /// Reconstructs a file from a snapshot produced by
    /// [`DenseFile::write_snapshot`].
    pub fn read_snapshot<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        if buf.len() < MAGIC.len() + 8 {
            return Err(SnapshotError::Corrupt("too short"));
        }
        let (payload, tail) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("eight bytes"));
        if fnv1a64(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut input = payload;
        if take(&mut input, 4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::decode(&mut input)?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let alg = match u8::decode(&mut input)? {
            1 => Algorithm::Control1,
            2 => Algorithm::Control2,
            _ => return Err(SnapshotError::Corrupt("unknown algorithm")),
        };
        let pages = u32::decode(&mut input)?;
        let d = u32::decode(&mut input)?;
        let big_d = u32::decode(&mut input)?;
        let j = u32::decode(&mut input)?;
        let k = u32::decode(&mut input)?;
        let slots = u32::decode(&mut input)?;

        let mut config = DenseFileConfig::control2(pages, d, big_d)
            .with_j(j)
            .with_macro_blocking(MacroBlocking::Force(k));
        config.algorithm = alg;
        let mut file = DenseFile::new(config).map_err(SnapshotError::Rejected)?;
        if file.config().slots != slots {
            return Err(SnapshotError::Corrupt("slot count disagrees with geometry"));
        }

        let mut layout: Vec<Vec<(K, V)>> = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            let n = u32::decode(&mut input)? as usize;
            let mut recs = Vec::with_capacity(n);
            for _ in 0..n {
                let key = K::decode(&mut input)?;
                let value = V::decode(&mut input)?;
                recs.push((key, value));
            }
            layout.push(recs);
        }
        if !input.is_empty() {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        // bulk_load_per_slot re-validates ordering, per-slot bounds and
        // BALANCE, then re-derives the flag state.
        file.bulk_load_per_slot(layout)
            .map_err(SnapshotError::Rejected)?;
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DenseFileConfig;

    fn loaded() -> DenseFile<u64, u64> {
        let mut f = DenseFile::new(DenseFileConfig::control2(64, 8, 40)).unwrap();
        f.bulk_load((0..250u64).map(|i| (i * 7, i))).unwrap();
        for i in 0..100u64 {
            f.insert(i * 7 + 3, 1000 + i).unwrap();
        }
        for i in (0..250u64).step_by(3) {
            f.remove(&(i * 7));
        }
        f
    }

    #[test]
    fn round_trip_preserves_contents_and_geometry() {
        let f = loaded();
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();
        let g: DenseFile<u64, u64> = DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(g.len(), f.len());
        assert_eq!(g.config().slots, f.config().slots);
        assert_eq!(g.config().j, f.config().j);
        assert_eq!(g.config().k, f.config().k);
        assert_eq!(g.config().algorithm, f.config().algorithm);
        let a: Vec<(u64, u64)> = f.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u64, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
        g.check_invariants().unwrap();
    }

    #[test]
    fn restored_file_keeps_working() {
        let f = loaded();
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();
        let mut g: DenseFile<u64, u64> = DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap();
        for i in 5000..5100u64 {
            g.insert(i, i).unwrap();
        }
        g.check_invariants().unwrap();
        assert_eq!(g.range(5000..5100).count(), 100);
    }

    #[test]
    fn macro_block_round_trip() {
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(64, 6, 8)).unwrap();
        assert!(f.config().k > 1);
        f.bulk_load((0..200u64).map(|i| (i, i))).unwrap();
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();
        let g: DenseFile<u64, u64> = DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(g.config().k, f.config().k);
        assert_eq!(g.len(), 200);
        g.check_invariants().unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let f = loaded();
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();

        // Flip a payload byte: checksum catches it.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(
            DenseFile::<u64, u64>::read_snapshot(&mut bad.as_slice()),
            Err(SnapshotError::ChecksumMismatch)
        ));

        // Truncation.
        let short = &bytes[..bytes.len() / 2];
        assert!(DenseFile::<u64, u64>::read_snapshot(&mut &short[..]).is_err());

        // Wrong magic (with a recomputed checksum, so the magic check fires).
        let mut forged = bytes.clone();
        forged[0] = b'X';
        let body_len = forged.len() - 8;
        let sum = fnv1a64(&forged[..body_len]);
        forged.truncate(body_len);
        sum.encode(&mut forged);
        assert!(matches!(
            DenseFile::<u64, u64>::read_snapshot(&mut forged.as_slice()),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn string_and_bytes_payloads() {
        let mut f: DenseFile<u64, String> =
            DenseFile::new(DenseFileConfig::control2(16, 4, 24)).unwrap();
        for i in 0..40u64 {
            f.insert(i, format!("value-{i}-αβγ")).unwrap();
        }
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();
        let g: DenseFile<u64, String> = DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(g.get(&7), Some(&"value-7-αβγ".to_string()));
        assert_eq!(g.len(), 40);
    }

    #[test]
    fn codec_primitives_round_trip() {
        let mut out = Vec::new();
        42u8.encode(&mut out);
        7u16.encode(&mut out);
        (-5i64).encode(&mut out);
        true.encode(&mut out);
        "hej".to_string().encode(&mut out);
        (1u32, 2u64).encode(&mut out);
        vec![1u8, 2, 3].encode(&mut out);
        let mut input = out.as_slice();
        assert_eq!(u8::decode(&mut input).unwrap(), 42);
        assert_eq!(u16::decode(&mut input).unwrap(), 7);
        assert_eq!(i64::decode(&mut input).unwrap(), -5);
        assert!(bool::decode(&mut input).unwrap());
        assert_eq!(String::decode(&mut input).unwrap(), "hej");
        assert_eq!(<(u32, u64)>::decode(&mut input).unwrap(), (1, 2));
        assert_eq!(Vec::<u8>::decode(&mut input).unwrap(), vec![1, 2, 3]);
        assert!(input.is_empty());

        let mut out = Vec::new();
        [9u8; 4].encode(&mut out);
        Some(7u32).encode(&mut out);
        Option::<u32>::None.encode(&mut out);
        (1u8, 2u16, 3u32).encode(&mut out);
        let mut input = out.as_slice();
        assert_eq!(<[u8; 4]>::decode(&mut input).unwrap(), [9u8; 4]);
        assert_eq!(Option::<u32>::decode(&mut input).unwrap(), Some(7));
        assert_eq!(Option::<u32>::decode(&mut input).unwrap(), None);
        assert_eq!(<(u8, u16, u32)>::decode(&mut input).unwrap(), (1, 2, 3));
        assert!(input.is_empty());
        // Decoding past the end fails cleanly.
        assert!(u64::decode(&mut input).is_err());
    }

    #[test]
    fn file_snapshot_via_filesystem() {
        let f = loaded();
        let path = std::env::temp_dir().join("dsf_snapshot_test.dsf");
        {
            let mut file = std::fs::File::create(&path).unwrap();
            f.write_snapshot(&mut file).unwrap();
        }
        let mut file = std::fs::File::open(&path).unwrap();
        let g: DenseFile<u64, u64> = DenseFile::read_snapshot(&mut file).unwrap();
        assert_eq!(g.len(), f.len());
        std::fs::remove_file(&path).ok();
    }
}
