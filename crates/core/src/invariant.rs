//! Full-state invariant checker.
//!
//! Every property the paper's definitions and Theorem 5.5 promise at the end
//! of a command is checked here against the raw store and calibrator state
//! (via uncounted `peek` access, so checking never perturbs measurements):
//!
//! 1. per-slot sortedness and cross-slot ordering (condition iii);
//! 2. per-slot density `≤ D#` (condition ii, page capacity by packing);
//! 3. rank counters and cached minimum keys agree with the store;
//! 4. **BALANCE(d,D)**: `p(v) ≤ g(v,1)` at every node (Theorem 5.5);
//! 5. flag legality (Fact 5.1) at flag-stable moments, for CONTROL 2 under
//!    the paper's density-gap assumption;
//! 6. `DEST` pointer containment for warned nodes;
//! 7. the capacity bound `N ≤ d·M`.

use dsf_pagestore::Key;

use crate::calibrator::NodeId;
use crate::config::Algorithm;
use crate::file::DenseFile;

/// One detected inconsistency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Records within a slot are not strictly ascending.
    SlotUnsorted {
        /// The offending slot.
        slot: u32,
    },
    /// The maximum key of one slot does not precede the minimum of the next
    /// non-empty slot.
    CrossSlotOrder {
        /// The earlier slot.
        slot_a: u32,
        /// The later slot.
        slot_b: u32,
    },
    /// A slot holds more than `D#` records.
    SlotOverCapacity {
        /// The offending slot.
        slot: u32,
        /// Its record count.
        len: u64,
        /// The bound `D#`.
        max: u64,
    },
    /// A calibrator rank counter disagrees with the store.
    CountMismatch {
        /// Heap index of the node.
        node: u32,
        /// The cached `N_v`.
        cached: u64,
        /// The true count.
        actual: u64,
    },
    /// A cached minimum key disagrees with the store.
    MinKeyMismatch {
        /// Heap index of the node.
        node: u32,
    },
    /// BALANCE(d,D) fails: `p(v) > g(v,1)`.
    BalanceViolated {
        /// Heap index of the node.
        node: u32,
        /// Its rank counter.
        count: u64,
        /// Slots in its range.
        width: u64,
    },
    /// Fact 5.1(a) fails: a warned node has `p(x) ≤ g(x,⅓)`.
    StaleWarning {
        /// Heap index of the node.
        node: u32,
    },
    /// Fact 5.1(b) fails: an unwarned non-root node has `p(x) ≥ g(x,⅔)`.
    MissingWarning {
        /// Heap index of the node.
        node: u32,
    },
    /// A warned node's `DEST` pointer lies outside its father's range.
    DestOutOfRange {
        /// Heap index of the node.
        node: u32,
        /// The pointer value.
        dest: u32,
    },
    /// The file holds more than `N = d·M` records.
    OverCapacity {
        /// Records held.
        len: u64,
        /// The capacity.
        capacity: u64,
    },
}

impl InvariantViolation {
    /// Stable machine-readable variant name (for logs, artifacts, and the
    /// fault-suite's coverage accounting).
    pub fn name(&self) -> &'static str {
        use InvariantViolation::*;
        match self {
            SlotUnsorted { .. } => "SlotUnsorted",
            CrossSlotOrder { .. } => "CrossSlotOrder",
            SlotOverCapacity { .. } => "SlotOverCapacity",
            CountMismatch { .. } => "CountMismatch",
            MinKeyMismatch { .. } => "MinKeyMismatch",
            BalanceViolated { .. } => "BalanceViolated",
            StaleWarning { .. } => "StaleWarning",
            MissingWarning { .. } => "MissingWarning",
            DestOutOfRange { .. } => "DestOutOfRange",
            OverCapacity { .. } => "OverCapacity",
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    /// `"<name()>: <detail>"` — the stable machine-readable variant name is
    /// the single source of truth for the prefix, so log lines grep the same
    /// way the fault-suite's coverage accounting counts.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use InvariantViolation::*;
        write!(f, "{}: ", self.name())?;
        match self {
            SlotUnsorted { slot } => write!(f, "slot {slot} is not sorted"),
            CrossSlotOrder { slot_a, slot_b } => {
                write!(f, "slots {slot_a} and {slot_b} are out of key order")
            }
            SlotOverCapacity { slot, len, max } => {
                write!(f, "slot {slot} holds {len} records, bound is {max}")
            }
            CountMismatch {
                node,
                cached,
                actual,
            } => {
                write!(
                    f,
                    "node {node}: rank counter {cached} ≠ true count {actual}"
                )
            }
            MinKeyMismatch { node } => write!(f, "node {node}: cached min key is wrong"),
            BalanceViolated { node, count, width } => {
                write!(
                    f,
                    "node {node}: BALANCE violated (N_v={count}, M_v={width})"
                )
            }
            StaleWarning { node } => {
                write!(f, "node {node}: warned although p ≤ g(1/3) (Fact 5.1a)")
            }
            MissingWarning { node } => {
                write!(f, "node {node}: unwarned although p ≥ g(2/3) (Fact 5.1b)")
            }
            DestOutOfRange { node, dest } => {
                write!(f, "node {node}: DEST={dest} outside the father's range")
            }
            OverCapacity { len, capacity } => {
                write!(f, "file holds {len} records, capacity is {capacity}")
            }
        }
    }
}

impl<K: Key, V> DenseFile<K, V> {
    /// Checks every invariant, returning all violations found.
    ///
    /// Uses uncounted access only — safe to call between measured commands.
    pub fn check_invariants(&self) -> Result<(), Vec<InvariantViolation>> {
        let mut out = Vec::new();
        self.check_store_order(&mut out);
        self.check_calibrator(&mut out);
        if out.is_empty() {
            Ok(())
        } else {
            Err(out)
        }
    }

    fn check_store_order(&self, out: &mut Vec<InvariantViolation>) {
        let mut prev: Option<(u32, K)> = None;
        for s in 0..self.cfg.slots {
            let recs = self.store.peek_slot(s);
            if !recs.windows(2).all(|w| w[0].key < w[1].key) {
                out.push(InvariantViolation::SlotUnsorted { slot: s });
            }
            if recs.len() as u64 > self.cfg.slot_max {
                out.push(InvariantViolation::SlotOverCapacity {
                    slot: s,
                    len: recs.len() as u64,
                    max: self.cfg.slot_max,
                });
            }
            if let (Some((ps, pk)), Some(first)) = (prev, recs.first()) {
                if pk >= first.key {
                    out.push(InvariantViolation::CrossSlotOrder {
                        slot_a: ps,
                        slot_b: s,
                    });
                }
            }
            if let Some(last) = recs.last() {
                prev = Some((s, last.key));
            }
        }
        if self.len() > self.capacity() {
            out.push(InvariantViolation::OverCapacity {
                len: self.len(),
                capacity: self.capacity(),
            });
        }
    }

    fn check_calibrator(&self, out: &mut Vec<InvariantViolation>) {
        let control2 = self.cfg.algorithm == Algorithm::Control2;
        for n in self.cal.all_nodes() {
            let (lo, hi) = self.cal.range(n);
            let actual: u64 = (lo..=hi).map(|s| self.store.len(s) as u64).sum();
            let cached = self.cal.count(n);
            if cached != actual {
                out.push(InvariantViolation::CountMismatch {
                    node: n.0,
                    cached,
                    actual,
                });
            }
            let actual_min = (lo..=hi).filter_map(|s| self.store.min_key(s)).min();
            if self.cal.min_key(n) != actual_min {
                out.push(InvariantViolation::MinKeyMismatch { node: n.0 });
            }
            if self.cal.p_gt(n, 3) {
                out.push(InvariantViolation::BalanceViolated {
                    node: n.0,
                    count: cached,
                    width: self.cal.width(n),
                });
            }
            if control2 {
                if self.cal.is_warned(n) {
                    if self.cal.p_le(n, 1) {
                        out.push(InvariantViolation::StaleWarning { node: n.0 });
                    }
                    if let Some(p) = n.parent() {
                        let (flo, fhi) = self.cal.range(p);
                        let d = self.cal.dest(n);
                        if d < flo || d > fhi {
                            out.push(InvariantViolation::DestOutOfRange { node: n.0, dest: d });
                        }
                    }
                } else if n != NodeId::ROOT && self.cfg.meets_gap_assumption && self.cal.p_ge(n, 2)
                {
                    out.push(InvariantViolation::MissingWarning { node: n.0 });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DenseFileConfig;

    #[test]
    fn fresh_and_loaded_files_pass() {
        let mut f: DenseFile<u64, u32> =
            DenseFile::new(DenseFileConfig::control2(32, 8, 48)).unwrap();
        f.check_invariants().unwrap();
        f.bulk_load((0..100u64).map(|k| (k, 1))).unwrap();
        f.check_invariants().unwrap();
        for k in 200..260u64 {
            f.insert(k, 2).unwrap();
        }
        for k in 0..50u64 {
            f.remove(&k);
        }
        f.check_invariants().unwrap();
    }

    #[test]
    fn detects_corrupted_counters() {
        let mut f: DenseFile<u64, u32> =
            DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        f.bulk_load((0..10u64).map(|k| (k, 1))).unwrap();
        // Corrupt a rank counter behind the checker's back.
        f.cal.add_count(3, 5);
        let errs = f.check_invariants().unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, InvariantViolation::CountMismatch { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_corrupted_min_keys() {
        let mut f: DenseFile<u64, u32> =
            DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        f.bulk_load((0..10u64).map(|k| (k * 10, 1))).unwrap();
        f.cal.refresh_min(0, Some(99_999));
        let errs = f.check_invariants().unwrap_err();
        assert!(
            errs.iter()
                .any(|v| matches!(v, InvariantViolation::MinKeyMismatch { .. })),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_illegal_warning_states() {
        use crate::calibrator::NodeId;
        let mut f: DenseFile<u64, u32> =
            DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        f.bulk_load((0..10u64).map(|k| (k, 1))).unwrap();
        // A warned node far below g(1/3) violates Fact 5.1(a); aim its DEST
        // out of range for good measure.
        let leaf = f.cal.leaf_of(0);
        f.cal.set_warning(leaf, true);
        f.cal.set_dest(leaf, 7); // parent of a leaf spans ≤ 3 slots, not 8
        let errs = f.check_invariants().unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, InvariantViolation::StaleWarning { .. })));
        assert!(errs
            .iter()
            .any(|v| matches!(v, InvariantViolation::DestOutOfRange { .. })));
        // And a hot unwarned node violates 5.1(b): fabricate by lowering a
        // legitimately warned node's flag.
        let mut g: DenseFile<u64, u32> =
            DenseFile::new(DenseFileConfig::control2(8, 2, 16).with_j(1)).unwrap();
        for k in 0..10u64 {
            g.insert(k, 1).unwrap();
        }
        let warned: Vec<NodeId> = g.cal.warned_nodes();
        if let Some(&w) = warned.first() {
            g.cal.set_warning(w, false);
            let errs = g.check_invariants().unwrap_err();
            assert!(
                errs.iter()
                    .any(|v| matches!(v, InvariantViolation::MissingWarning { .. })),
                "{errs:?}"
            );
        }
    }

    #[test]
    fn violations_render_messages() {
        let v = InvariantViolation::BalanceViolated {
            node: 5,
            count: 99,
            width: 2,
        };
        assert!(v.to_string().contains("BALANCE"));
        let v = InvariantViolation::MissingWarning { node: 3 };
        assert!(v.to_string().contains("5.1b"));
    }

    #[test]
    fn display_is_prefixed_with_the_stable_name() {
        let samples = [
            InvariantViolation::SlotUnsorted { slot: 1 },
            InvariantViolation::CrossSlotOrder {
                slot_a: 1,
                slot_b: 2,
            },
            InvariantViolation::SlotOverCapacity {
                slot: 0,
                len: 9,
                max: 8,
            },
            InvariantViolation::CountMismatch {
                node: 1,
                cached: 2,
                actual: 3,
            },
            InvariantViolation::MinKeyMismatch { node: 4 },
            InvariantViolation::BalanceViolated {
                node: 5,
                count: 9,
                width: 1,
            },
            InvariantViolation::StaleWarning { node: 6 },
            InvariantViolation::MissingWarning { node: 7 },
            InvariantViolation::DestOutOfRange { node: 8, dest: 9 },
            InvariantViolation::OverCapacity {
                len: 10,
                capacity: 9,
            },
        ];
        for v in samples {
            let text = v.to_string();
            let prefix = format!("{}: ", v.name());
            assert!(text.starts_with(&prefix), "{text:?} !~ {prefix:?}");
            assert!(text.len() > prefix.len(), "{text:?} has no detail");
        }
    }
}
