//! CONTROL 1 — the paper's amortized maintenance algorithm (§3).
//!
//! After step A (the insertion/deletion itself, performed in `file.rs`),
//! step B checks whether any calibrator node violates BALANCE(d,D), i.e.
//! `p(v) > g(v,1)`. If so, it takes the *highest* violating node `v` and
//! redistributes the records under `v`'s father evenly — a one-shot
//! `O(M_{f_v})`-page operation. Itai-Konheim-Rodeh-style analysis gives this
//! an `O(log²M/(D−d))` *amortized* bound, but a single command can cost
//! `O(M)` pages — the spike CONTROL 2 exists to remove. The
//! `exp_amortized_vs_worstcase` experiment measures exactly that contrast.

use dsf_pagestore::{Key, Record};

use crate::calibrator::NodeId;
use crate::file::DenseFile;

impl<K: Key, V> DenseFile<K, V> {
    /// Step B of CONTROL 1, run after step A touched `slot`.
    pub(crate) fn control1_after_update(&mut self, slot: u32) {
        // Violations can only appear on the updated leaf-to-root path.
        // After a redistribution the rewritten subtree is even and its
        // ancestors are unchanged, so with the paper's density-gap
        // assumption one pass suffices; the loop guards the out-of-contract
        // configurations (ablations) where the even spread can still leave
        // a deep node over its bound.
        for _ in 0..=self.cal.log_slots() {
            let Some(v) = self.highest_violation_on_path(slot) else {
                return;
            };
            if v == NodeId::ROOT {
                // Unreachable while the capacity gate holds: p(root) ≤ d.
                debug_assert!(false, "root cannot violate BALANCE under the capacity gate");
                return;
            }
            let f = v.parent().expect("non-root");
            self.redistribute(f);
        }
    }

    /// The least-deep node on the leaf-to-root path of `slot` with
    /// `p(v) > g(v,1)`.
    fn highest_violation_on_path(&self, slot: u32) -> Option<NodeId> {
        let mut highest = None;
        let mut n = self.cal.leaf_of(slot);
        loop {
            if self.cal.p_gt(n, 3) {
                highest = Some(n);
            }
            match n.parent() {
                Some(p) => n = p,
                None => break,
            }
        }
        highest
    }

    /// Rewrites every slot under `f` with an even spread of the records in
    /// `RANGE(f)`: slot `i` of the `W` slots receives records
    /// `[n·i/W, n·(i+1)/W)`. This guarantees the paper's step-B condition
    /// `p(w) ≤ p(f) + 1` for every descendant `w` of `f`.
    pub(crate) fn redistribute(&mut self, f: NodeId) {
        let (lo, hi) = self.cal.range(f);
        let w = u64::from(hi - lo) + 1;
        self.stats.redistributions += 1;
        self.stats.redistributed_slots += w;

        let mut all: Vec<Record<K, V>> = Vec::new();
        for s in lo..=hi {
            all.append(&mut self.store.take_all(s));
        }
        self.respread(all, lo, hi - lo + 1);
        self.cal.recompute_subtree(f);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{DenseFileConfig, MacroBlocking};
    use crate::file::DenseFile;

    fn control1_file(pages: u32, d: u32, big_d: u32) -> DenseFile<u64, u32> {
        DenseFile::new(
            DenseFileConfig::control1(pages, d, big_d).with_macro_blocking(MacroBlocking::Disabled),
        )
        .unwrap()
    }

    #[test]
    fn hammering_one_page_triggers_redistribution() {
        let mut f = control1_file(16, 8, 24);
        // Fill half the capacity with widely-spaced keys.
        f.bulk_load((0..64u64).map(|i| (i * 1_000_000, i as u32)))
            .unwrap();
        // Hammer one key gap: every insert lands in the same slot.
        let mut redistributions = 0;
        for i in 0..60u64 {
            f.insert(500_000 + i, 0).unwrap();
            redistributions = f.op_stats().redistributions;
            f.check_invariants()
                .unwrap_or_else(|v| panic!("invariants broken: {v:?}"));
        }
        assert!(
            redistributions > 0,
            "a hammered page must eventually redistribute"
        );
        assert_eq!(f.len(), 124);
    }

    #[test]
    fn balance_holds_after_every_command() {
        let mut f = control1_file(32, 4, 40);
        for i in 0..f.capacity() {
            f.insert(i * 7919 % 100_000_000, i as u32).ok();
        }
        f.check_invariants()
            .unwrap_or_else(|v| panic!("invariants broken: {v:?}"));
    }

    #[test]
    fn control1_has_expensive_spikes_but_cheap_average() {
        let mut f = control1_file(64, 16, 64);
        f.bulk_load((0..512u64).map(|i| (i << 20, 0u32))).unwrap();
        // Localized surge: all inserts into one gap.
        for i in 0..500u64 {
            f.insert((1 << 19) + i, 0).unwrap();
        }
        let stats = f.op_stats();
        // The worst command redistributed a wide subtree: far above the mean.
        assert!(stats.max_accesses as f64 > 4.0 * stats.mean_accesses());
        assert!(stats.redistributions > 0);
    }

    #[test]
    fn deletions_never_violate_balance() {
        let mut f = control1_file(16, 8, 32);
        f.bulk_load((0..128u64).map(|i| (i, 0u32))).unwrap();
        let before = f.op_stats().redistributions;
        for i in 0..128u64 {
            f.remove(&i);
        }
        assert_eq!(
            f.op_stats().redistributions,
            before,
            "deletes only lower densities"
        );
        assert!(f.is_empty());
        f.check_invariants()
            .unwrap_or_else(|v| panic!("invariants broken: {v:?}"));
    }
}
