//! `dsf-server` — a pipelined network front-end that turns concurrent
//! clients into group commits.
//!
//! The storage layers below already make batches cheap: `DenseFile`
//! group-applies a sorted batch with one descent per command (PR 5),
//! the WAL turns a batch into one group commit — one `write`, at most
//! one `fsync` (PR 5/PR 6). What none of them answer is where batches
//! *come from*. A single caller has to assemble them by hand; real
//! concurrency arrives as many small independent requests.
//!
//! This crate closes that gap with a deliberately boring stack of
//! std-only pieces:
//!
//! * [`protocol`] — a length-prefixed binary wire format (requests,
//!   responses, a per-request durability flag), hardened against torn,
//!   oversized, and trailing-garbage frames.
//! * [`service`] — [`KvService`], the facade the server fronts;
//!   [`ShardedKv`] (in-memory `ShardedFile`) and [`DurableKv`] (one
//!   WAL-backed `DurableFile` per shard) implement it.
//! * [`accumulator`] — the heart: per-shard bounded queues whose
//!   workers drain *whatever has accumulated* (up to a window) into one
//!   `apply_batch` call. Concurrent clients therefore ride shared
//!   fsyncs without any client-side batching.
//! * [`server`] / [`client`] — thread-per-connection TCP with request
//!   pipelining and in-order responses; graceful shutdown drains every
//!   acked command to disk.
//!
//! Every response to a structural command carries the flight-recorder
//! seq it executed under, so a wire-level ack can be correlated with
//! the in-process audit trail (`dsf-flight`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod client;
pub mod protocol;
pub mod server;
pub mod service;
mod tel;

pub use accumulator::{Accumulator, Config as AccumulatorConfig, ReplySlot};
pub use client::Client;
pub use protocol::{Outcome, ProtocolError, Request, Response};
pub use server::{Server, ServerConfig};
pub use service::{DurableKv, KvService, ShardedKv};
pub use tel::ServerTel;
