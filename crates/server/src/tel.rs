//! Server metrics, registered in the process-global `dsf-telemetry`
//! registry (all `dsf_server_*`; see `docs/OBSERVABILITY.md`). Handles
//! are resolved once per server and shared; like every other site in the
//! workspace they are ~free while the registry is disabled.

use dsf_telemetry::{Counter, Gauge, Histogram};
use std::sync::Arc;

/// The server's pre-resolved metric handles.
pub struct ServerTel {
    /// `dsf_server_connections_total` — connections accepted.
    pub connections: Arc<Counter>,
    /// `dsf_server_requests_total` — request frames decoded.
    pub requests: Arc<Counter>,
    /// `dsf_server_group_commits_total` — batches applied (each is one
    /// group apply / group commit).
    pub group_commits: Arc<Counter>,
    /// `dsf_server_batch_commands` — commands per applied batch; its
    /// mean is the experiment's "commands per group commit".
    pub batch_commands: Arc<Histogram>,
    /// `dsf_server_request_micros` — enqueue→reply latency of
    /// structural requests, server side.
    pub request_micros: Arc<Histogram>,
    /// `dsf_server_queue_depth{shard=…}` — live accumulator depth.
    pub queue_depth: Vec<Arc<Gauge>>,
    /// `dsf_server_protocol_errors_total` — frames that failed to parse.
    pub protocol_errors: Arc<Counter>,
}

impl ServerTel {
    /// Resolves every handle against the global registry.
    pub fn new(shards: usize) -> Arc<ServerTel> {
        let reg = dsf_telemetry::global();
        Arc::new(ServerTel {
            connections: reg.counter(
                "dsf_server_connections_total",
                "client connections accepted by dsf serve",
            ),
            requests: reg.counter(
                "dsf_server_requests_total",
                "request frames decoded across all connections",
            ),
            group_commits: reg.counter(
                "dsf_server_group_commits_total",
                "accumulator batches applied (one group apply/commit each)",
            ),
            batch_commands: reg.histogram(
                "dsf_server_batch_commands",
                "commands per applied accumulator batch",
            ),
            request_micros: reg.histogram(
                "dsf_server_request_micros",
                "enqueue-to-reply latency of structural requests (us)",
            ),
            queue_depth: (0..shards)
                .map(|s| {
                    reg.gauge_with(
                        "dsf_server_queue_depth",
                        &[("shard", &s.to_string())],
                        "live accumulator queue depth",
                    )
                })
                .collect(),
            protocol_errors: reg.counter(
                "dsf_server_protocol_errors_total",
                "request frames rejected by the wire protocol",
            ),
        })
    }

    /// Per-client command counter (`dsf_server_client_commands_total`),
    /// labelled by connection id.
    pub fn client_commands(&self, client: u64) -> Arc<Counter> {
        dsf_telemetry::global().counter_with(
            "dsf_server_client_commands_total",
            &[("client", &client.to_string())],
            "structural commands acked, per client connection",
        )
    }
}
