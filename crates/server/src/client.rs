//! A blocking, pipelining client for the `dsf serve` wire protocol.
//!
//! [`Client::call`] is the simple request/response path. For throughput,
//! [`Client::send`] queues requests without waiting and [`Client::recv`]
//! takes responses in request order — keeping several requests in flight
//! is exactly what lets the server's accumulator form group commits, so
//! the benchmark clients (E18) drive a fixed pipeline depth.

use crate::protocol::{self, ProtocolError, Request, Response};
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connection to a `dsf serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Requests sent but not yet answered.
    in_flight: usize,
}

impl Client {
    /// Connects (and disables Nagle, since frames are small and
    /// latency-sensitive).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            in_flight: 0,
        })
    }

    /// Queues one request. Bytes may sit in the local buffer until
    /// [`recv`](Self::recv), [`flush`](Self::flush), or the buffer fills.
    pub fn send(&mut self, req: &Request) -> Result<(), ProtocolError> {
        protocol::write_request(&mut self.writer, req)?;
        self.in_flight += 1;
        Ok(())
    }

    /// Pushes buffered request bytes onto the wire.
    pub fn flush(&mut self) -> Result<(), ProtocolError> {
        self.writer.flush().map_err(ProtocolError::from)
    }

    /// Takes the next response, in request order. Flushes first so the
    /// server has everything we queued.
    pub fn recv(&mut self) -> Result<Response, ProtocolError> {
        self.flush()?;
        match protocol::read_response(&mut self.reader)? {
            Some(rsp) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                Ok(rsp)
            }
            None => Err(ProtocolError::Io(std::io::ErrorKind::UnexpectedEof)),
        }
    }

    /// One request, one response (drains nothing else; callers mixing
    /// `call` with `send` must [`recv`](Self::recv) their backlog first).
    pub fn call(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        assert_eq!(
            self.in_flight, 0,
            "call() with {} pipelined responses outstanding",
            self.in_flight
        );
        self.send(req)?;
        self.recv()
    }

    /// Responses currently owed by the server.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}
