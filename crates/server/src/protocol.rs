//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one **frame**: a little-endian
//! `u32` byte length followed by that many body bytes. The body starts
//! with a one-byte tag; everything after it is fixed-width little-endian
//! integers and length-prefixed UTF-8 strings. There is no external
//! schema, no compression, and no async framing state: a frame is
//! self-contained, so a connection is just a byte stream of frames in
//! each direction.
//!
//! **Pipelining** is the protocol's whole design: a client may send any
//! number of request frames before reading a single response, and the
//! server answers every request of one connection *in request order*.
//! Request/response correlation is therefore positional — no request IDs
//! on the wire — exactly like the classic Redis/memcached framing.
//!
//! **Durability on ack** travels per request: structural commands
//! ([`Request::Insert`], [`Request::Remove`]) carry a [`Durability`] flag.
//! `Strict` means "my response implies my WAL frame was fsynced";
//! `Relaxed` means "my response implies my command was applied and its
//! frame buffered in the commit window" (it becomes durable when the
//! window closes — at the latest on graceful shutdown or
//! [`Request::Flush`]).
//!
//! Decoding never panics on wire input: torn frames, oversized lengths,
//! unknown tags, trailing bytes and invalid UTF-8 all surface as
//! [`ProtocolError`] values, and a server that sees one answers with
//! [`Response::Error`] and closes the connection (framing cannot be
//! resynchronized after corrupt input).

use dsf_durable::Durability;
use std::io::{Read, Write};

/// Hard ceiling on a frame's body length. A peer announcing more is
/// corrupt (or hostile); the frame is rejected *before* any allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// Ceiling on one value's byte length ([`Request::Insert`]).
pub const MAX_VALUE: usize = 1 << 16;

/// Ceiling on [`Request::Scan`]'s `limit` (bounds the response frame).
pub const MAX_SCAN: u32 = 4096;

/// Everything that can go wrong turning bytes into messages. Never a
/// panic: every variant is a deterministic function of the input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame header announced more than [`MAX_FRAME`] bytes.
    Oversized {
        /// The announced body length.
        len: u64,
        /// The configured ceiling it exceeded.
        max: u64,
    },
    /// The stream ended mid-frame (a torn or short read).
    Torn {
        /// Bytes the frame still needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The body's first byte is not a known message tag.
    UnknownTag(u8),
    /// The body decoded cleanly but had bytes left over.
    Trailing {
        /// Number of undecoded bytes at the end of the body.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A field exceeded its own ceiling (value length, scan limit).
    FieldTooLarge {
        /// Which field.
        field: &'static str,
        /// The announced size.
        len: u64,
        /// The field's ceiling.
        max: u64,
    },
    /// An I/O error while reading or writing a frame.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::Torn { needed, got } => {
                write!(f, "torn frame: needed {needed} more bytes, got {got}")
            }
            ProtocolError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtocolError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::FieldTooLarge { field, len, max } => {
                write!(f, "{field} of {len} exceeds the limit {max}")
            }
            ProtocolError::Io(kind) => write!(f, "i/o error: {kind}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e.kind())
    }
}

/// A client request. Structural commands carry their durability-on-ack;
/// reads execute immediately against the shared file (they never enter
/// the accumulator) but still answer in request order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Insert (or replace) `key ↦ value`.
    Insert {
        /// Record key.
        key: u64,
        /// Record value (UTF-8).
        value: String,
        /// Whether the ack must wait for the fsync.
        durability: Durability,
    },
    /// Delete `key`.
    Remove {
        /// Record key.
        key: u64,
        /// Whether the ack must wait for the fsync.
        durability: Durability,
    },
    /// Point lookup.
    Get {
        /// Record key.
        key: u64,
    },
    /// In-order scan of at most `limit` (≤ [`MAX_SCAN`]) records with
    /// key ≥ `start`.
    Scan {
        /// First key of interest.
        start: u64,
        /// Maximum records returned.
        limit: u32,
    },
    /// Liveness probe.
    Ping,
    /// Total records in the file.
    Count,
    /// Barrier: after all of this connection's earlier commands are
    /// applied, close the commit window and fsync. The ack implies every
    /// previously acked `Relaxed` command is now durable.
    Flush,
    /// Ask the server to shut down gracefully (drain, flush, exit).
    Shutdown,
}

/// Outcome of a structural command, mirrored from
/// [`dsf_core::CommandOutcome`] with the value type fixed to `String`
/// and a flight-recorder seq attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The key was new and was inserted.
    Inserted,
    /// The key existed; its value was replaced (old value returned).
    Replaced(String),
    /// The key existed and was removed (old value returned).
    Removed(String),
    /// Remove of an absent key.
    NotFound,
    /// The file refused the command (capacity); message attached.
    Rejected(String),
}

/// A server response, answering requests of one connection in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Outcome of an [`Request::Insert`] or [`Request::Remove`], stamped
    /// with the flight-recorder command seq (`0` while the recorder is
    /// off) so `dsf flight replay` attributes page cost to this request.
    Applied {
        /// What the command did.
        outcome: Outcome,
        /// Flight-recorder sequence number of the command.
        seq: u64,
    },
    /// Answer to [`Request::Get`].
    Value(Option<String>),
    /// Answer to [`Request::Scan`].
    Entries(Vec<(u64, String)>),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Count`].
    Count(u64),
    /// Answer to [`Request::Flush`]: the window is closed and synced.
    Flushed,
    /// Answer to [`Request::Shutdown`]: the server is draining.
    ShuttingDown,
    /// The request failed; human-readable reason attached. Sent for
    /// protocol violations (then the connection closes) and for storage
    /// errors (connection stays up).
    Error(String),
}

// ---------------------------------------------------------------------
// Tags.
// ---------------------------------------------------------------------

const REQ_INSERT: u8 = 0x01;
const REQ_REMOVE: u8 = 0x02;
const REQ_GET: u8 = 0x03;
const REQ_SCAN: u8 = 0x04;
const REQ_PING: u8 = 0x05;
const REQ_COUNT: u8 = 0x06;
const REQ_FLUSH: u8 = 0x07;
const REQ_SHUTDOWN: u8 = 0x08;

const RSP_APPLIED: u8 = 0x81;
const RSP_VALUE: u8 = 0x82;
const RSP_ENTRIES: u8 = 0x83;
const RSP_PONG: u8 = 0x84;
const RSP_COUNT: u8 = 0x85;
const RSP_FLUSHED: u8 = 0x86;
const RSP_SHUTDOWN: u8 = 0x87;
const RSP_ERROR: u8 = 0x88;

const OUT_INSERTED: u8 = 1;
const OUT_REPLACED: u8 = 2;
const OUT_REMOVED: u8 = 3;
const OUT_NOT_FOUND: u8 = 4;
const OUT_REJECTED: u8 = 5;

const DUR_STRICT: u8 = 0;
const DUR_RELAXED: u8 = 1;

// ---------------------------------------------------------------------
// Body codec: a tiny cursor over the frame body.
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.at.checked_add(n).ok_or(ProtocolError::Torn {
            needed: n,
            got: self.buf.len() - self.at,
        })?;
        if end > self.buf.len() {
            return Err(ProtocolError::Torn {
                needed: n,
                got: self.buf.len() - self.at,
            });
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        if len > MAX_VALUE {
            return Err(ProtocolError::FieldTooLarge {
                field: "string",
                len: len as u64,
                max: MAX_VALUE as u64,
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    fn durability(&mut self) -> Result<Durability, ProtocolError> {
        match self.u8()? {
            DUR_STRICT => Ok(Durability::Strict),
            DUR_RELAXED => Ok(Durability::Relaxed),
            other => Err(ProtocolError::UnknownTag(other)),
        }
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Trailing {
                extra: self.buf.len() - self.at,
            })
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_durability(out: &mut Vec<u8>, d: Durability) {
    out.push(match d {
        Durability::Strict => DUR_STRICT,
        Durability::Relaxed => DUR_RELAXED,
    });
}

impl Request {
    /// Serializes the request body (no frame header).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Insert {
                key,
                value,
                durability,
            } => {
                out.push(REQ_INSERT);
                put_durability(out, *durability);
                out.extend_from_slice(&key.to_le_bytes());
                put_string(out, value);
            }
            Request::Remove { key, durability } => {
                out.push(REQ_REMOVE);
                put_durability(out, *durability);
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::Get { key } => {
                out.push(REQ_GET);
                out.extend_from_slice(&key.to_le_bytes());
            }
            Request::Scan { start, limit } => {
                out.push(REQ_SCAN);
                out.extend_from_slice(&start.to_le_bytes());
                out.extend_from_slice(&limit.to_le_bytes());
            }
            Request::Ping => out.push(REQ_PING),
            Request::Count => out.push(REQ_COUNT),
            Request::Flush => out.push(REQ_FLUSH),
            Request::Shutdown => out.push(REQ_SHUTDOWN),
        }
    }

    /// Decodes a request body. Rejects unknown tags, torn bodies,
    /// oversized fields and trailing bytes; never panics.
    pub fn decode(body: &[u8]) -> Result<Request, ProtocolError> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            REQ_INSERT => {
                let durability = c.durability()?;
                let key = c.u64()?;
                let value = c.string()?;
                Request::Insert {
                    key,
                    value,
                    durability,
                }
            }
            REQ_REMOVE => {
                let durability = c.durability()?;
                let key = c.u64()?;
                Request::Remove { key, durability }
            }
            REQ_GET => Request::Get { key: c.u64()? },
            REQ_SCAN => {
                let start = c.u64()?;
                let limit = c.u32()?;
                if limit > MAX_SCAN {
                    return Err(ProtocolError::FieldTooLarge {
                        field: "scan limit",
                        len: u64::from(limit),
                        max: u64::from(MAX_SCAN),
                    });
                }
                Request::Scan { start, limit }
            }
            REQ_PING => Request::Ping,
            REQ_COUNT => Request::Count,
            REQ_FLUSH => Request::Flush,
            REQ_SHUTDOWN => Request::Shutdown,
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes the response body (no frame header).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Applied { outcome, seq } => {
                out.push(RSP_APPLIED);
                out.extend_from_slice(&seq.to_le_bytes());
                match outcome {
                    Outcome::Inserted => out.push(OUT_INSERTED),
                    Outcome::Replaced(old) => {
                        out.push(OUT_REPLACED);
                        put_string(out, old);
                    }
                    Outcome::Removed(old) => {
                        out.push(OUT_REMOVED);
                        put_string(out, old);
                    }
                    Outcome::NotFound => out.push(OUT_NOT_FOUND),
                    Outcome::Rejected(msg) => {
                        out.push(OUT_REJECTED);
                        put_string(out, msg);
                    }
                }
            }
            Response::Value(v) => {
                out.push(RSP_VALUE);
                match v {
                    Some(s) => {
                        out.push(1);
                        put_string(out, s);
                    }
                    None => out.push(0),
                }
            }
            Response::Entries(entries) => {
                out.push(RSP_ENTRIES);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (k, v) in entries {
                    out.extend_from_slice(&k.to_le_bytes());
                    put_string(out, v);
                }
            }
            Response::Pong => out.push(RSP_PONG),
            Response::Count(n) => {
                out.push(RSP_COUNT);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Response::Flushed => out.push(RSP_FLUSHED),
            Response::ShuttingDown => out.push(RSP_SHUTDOWN),
            Response::Error(msg) => {
                out.push(RSP_ERROR);
                put_string(out, msg);
            }
        }
    }

    /// Decodes a response body; the mirror of [`Response::encode`].
    pub fn decode(body: &[u8]) -> Result<Response, ProtocolError> {
        let mut c = Cursor::new(body);
        let rsp = match c.u8()? {
            RSP_APPLIED => {
                let seq = c.u64()?;
                let outcome = match c.u8()? {
                    OUT_INSERTED => Outcome::Inserted,
                    OUT_REPLACED => Outcome::Replaced(c.string()?),
                    OUT_REMOVED => Outcome::Removed(c.string()?),
                    OUT_NOT_FOUND => Outcome::NotFound,
                    OUT_REJECTED => Outcome::Rejected(c.string()?),
                    other => return Err(ProtocolError::UnknownTag(other)),
                };
                Response::Applied { outcome, seq }
            }
            RSP_VALUE => match c.u8()? {
                0 => Response::Value(None),
                1 => Response::Value(Some(c.string()?)),
                other => return Err(ProtocolError::UnknownTag(other)),
            },
            RSP_ENTRIES => {
                let n = c.u32()?;
                if n > MAX_SCAN {
                    return Err(ProtocolError::FieldTooLarge {
                        field: "entry count",
                        len: u64::from(n),
                        max: u64::from(MAX_SCAN),
                    });
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let k = c.u64()?;
                    let v = c.string()?;
                    entries.push((k, v));
                }
                Response::Entries(entries)
            }
            RSP_PONG => Response::Pong,
            RSP_COUNT => Response::Count(c.u64()?),
            RSP_FLUSHED => Response::Flushed,
            RSP_SHUTDOWN => Response::ShuttingDown,
            RSP_ERROR => Response::Error(c.string()?),
            other => return Err(ProtocolError::UnknownTag(other)),
        };
        c.finish()?;
        Ok(rsp)
    }
}

// ---------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------

/// Writes one frame: `u32` LE length then the body.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), ProtocolError> {
    debug_assert!(body.len() <= MAX_FRAME, "encoder produced oversized frame");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one frame body. `Ok(None)` on a clean EOF *between* frames
/// (the peer closed after a complete message); a stream that ends inside
/// a header or body is a torn read and errors.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, ProtocolError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Short(got) => {
            return Err(ProtocolError::Torn {
                needed: 4 - got,
                got,
            })
        }
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized {
            len: len as u64,
            max: MAX_FRAME as u64,
        });
    }
    let mut body = vec![0u8; len];
    match read_exact_or_eof(r, &mut body)? {
        ReadOutcome::Full => Ok(Some(body)),
        ReadOutcome::Eof => Err(ProtocolError::Torn {
            needed: len,
            got: 0,
        }),
        ReadOutcome::Short(got) => Err(ProtocolError::Torn {
            needed: len - got,
            got,
        }),
    }
}

enum ReadOutcome {
    Full,
    Eof,
    Short(usize),
}

/// `read_exact` that distinguishes "EOF before any byte" (clean close)
/// from "EOF mid-buffer" (torn), and retries on `Interrupted`.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Short(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Encodes `req` and writes it as one frame.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> Result<(), ProtocolError> {
    let mut body = Vec::with_capacity(32);
    req.encode(&mut body);
    write_frame(w, &body)
}

/// Encodes `rsp` and writes it as one frame.
pub fn write_response<W: Write>(w: &mut W, rsp: &Response) -> Result<(), ProtocolError> {
    let mut body = Vec::with_capacity(32);
    rsp.encode(&mut body);
    write_frame(w, &body)
}

/// Reads and decodes one request frame (`Ok(None)` on clean EOF).
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, ProtocolError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Request::decode(&body).map(Some),
    }
}

/// Reads and decodes one response frame (`Ok(None)` on clean EOF).
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<Response>, ProtocolError> {
    match read_frame(r)? {
        None => Ok(None),
        Some(body) => Response::decode(&body).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let mut body = Vec::new();
        req.encode(&mut body);
        assert_eq!(Request::decode(&body).expect("decodes"), req);
    }

    fn round_trip_response(rsp: Response) {
        let mut body = Vec::new();
        rsp.encode(&mut body);
        assert_eq!(Response::decode(&body).expect("decodes"), rsp);
    }

    #[test]
    fn request_round_trips() {
        round_trip_request(Request::Insert {
            key: 42,
            value: "hello".into(),
            durability: Durability::Relaxed,
        });
        round_trip_request(Request::Remove {
            key: u64::MAX,
            durability: Durability::Strict,
        });
        round_trip_request(Request::Get { key: 0 });
        round_trip_request(Request::Scan {
            start: 7,
            limit: MAX_SCAN,
        });
        round_trip_request(Request::Ping);
        round_trip_request(Request::Count);
        round_trip_request(Request::Flush);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn response_round_trips() {
        round_trip_response(Response::Applied {
            outcome: Outcome::Inserted,
            seq: 9,
        });
        round_trip_response(Response::Applied {
            outcome: Outcome::Replaced("old".into()),
            seq: 0,
        });
        round_trip_response(Response::Value(Some("v".into())));
        round_trip_response(Response::Value(None));
        round_trip_response(Response::Entries(vec![(1, "a".into()), (2, "b".into())]));
        round_trip_response(Response::Error("nope".into()));
    }

    #[test]
    fn oversized_header_is_an_error_not_an_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ProtocolError::Oversized { .. }));
    }

    #[test]
    fn torn_body_is_an_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&[1, 2, 3]); // 3 of 8 body bytes
        let err = read_frame(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, ProtocolError::Torn { .. }));
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(read_frame(&mut [].as_slice()).unwrap(), None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut body = Vec::new();
        Request::Ping.encode(&mut body);
        body.push(0xFF);
        assert!(matches!(
            Request::decode(&body),
            Err(ProtocolError::Trailing { extra: 1 })
        ));
    }

    #[test]
    fn scan_limit_bounded() {
        let mut body = vec![REQ_SCAN];
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&(MAX_SCAN + 1).to_le_bytes());
        assert!(matches!(
            Request::decode(&body),
            Err(ProtocolError::FieldTooLarge { .. })
        ));
    }
}
