//! The TCP server: accept loop, per-connection reader/writer pairs, and
//! the graceful-shutdown choreography.
//!
//! Threading model (no async runtime, exactly like the metrics exporter
//! in `dsf-telemetry` this is patterned on): one non-blocking accept
//! loop polling a stop flag, two threads per connection — a **reader**
//! that decodes frames and routes them (structural commands into the
//! [`Accumulator`], reads executed immediately), and a **writer** that
//! emits responses *in request order*, parking on each request's
//! [`ReplySlot`] until its shard worker fulfills it. The bounded channel
//! between reader and writer is the connection's pipeline window; when
//! it (or a shard queue) fills, the reader stalls and TCP flow control
//! extends the backpressure to the client.
//!
//! Graceful shutdown ([`Server::shutdown`], triggered by
//! [`Request::Shutdown`] or by the embedding process):
//!
//! 1. stop accepting; 2. connection readers wind down (pending requests
//!    keep flowing); 3. writers drain — every request that was read gets
//!    its response; 4. the accumulator closes and shard workers drain
//!    their queues through the normal group-apply path; 5. the service
//!    flushes (commit windows close and fsync). Every acked command is
//!    therefore durable before the process exits — the shutdown+restart
//!    test pins exactly that.

use crate::accumulator::{Accumulator, Config as AccConfig, ReadRequest, ReplySlot};
use crate::protocol::{self, ProtocolError, Request, Response};
use crate::service::KvService;
use crate::tel::ServerTel;
use dsf_core::Command;
use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Accumulator window and queue bounds.
    pub accumulator: AccConfig,
    /// Responses a connection may have in flight before its reader
    /// stalls (the per-connection pipeline window).
    pub pipeline_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            accumulator: AccConfig::default(),
            pipeline_depth: 128,
        }
    }
}

/// How long an idle reader waits between stop-flag polls.
const POLL: Duration = Duration::from_millis(20);
/// Patience for the rest of a frame once its first bytes arrived.
const FRAME_PATIENCE: Duration = Duration::from_secs(5);

struct Inner {
    acc: Arc<Accumulator>,
    tel: Arc<ServerTel>,
    /// Set once: stop accepting, wind down readers.
    stop: AtomicBool,
    /// Signals the embedding process that a client asked for shutdown.
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    conns: Mutex<Vec<JoinHandle<()>>>,
    next_client: AtomicU64,
    pipeline_depth: usize,
}

impl Inner {
    fn request_shutdown(&self) {
        let mut flag = self.shutdown_requested.lock().expect("shutdown poisoned");
        *flag = true;
        self.shutdown_cv.notify_all();
    }
}

/// A running `dsf serve` instance (embedded or behind the CLI).
pub struct Server {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`), spawns the shard workers and
    /// the accept loop, and returns immediately.
    pub fn bind(
        service: Arc<dyn KvService>,
        cfg: ServerConfig,
        addr: &str,
    ) -> std::io::Result<Server> {
        let shards = service.shard_count();
        let tel = ServerTel::new(shards);
        let acc = Accumulator::new(service, cfg.accumulator, Arc::clone(&tel));
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            acc: Arc::clone(&acc),
            tel,
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(Vec::new()),
            next_client: AtomicU64::new(0),
            pipeline_depth: cfg.pipeline_depth.max(1),
        });
        let workers = (0..shards)
            .map(|s| {
                let acc = Arc::clone(&acc);
                std::thread::Builder::new()
                    .name(format!("dsf-shard-{s}"))
                    .spawn(move || acc.run_worker(s))
                    .expect("spawn shard worker")
            })
            .collect();
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("dsf-accept".into())
                .spawn(move || accept_loop(&inner, &listener))
                .expect("spawn accept loop")
        };
        Ok(Server {
            inner,
            accept: Some(accept),
            workers,
            addr,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends [`Request::Shutdown`] (the CLI's main
    /// loop). Returns immediately if one already arrived.
    pub fn wait_shutdown_request(&self) {
        let mut flag = self
            .inner
            .shutdown_requested
            .lock()
            .expect("shutdown poisoned");
        while !*flag {
            flag = self
                .inner
                .shutdown_cv
                .wait(flag)
                .expect("shutdown poisoned");
        }
    }

    /// Whether a client has requested shutdown.
    pub fn shutdown_requested(&self) -> bool {
        *self
            .inner
            .shutdown_requested
            .lock()
            .expect("shutdown poisoned")
    }

    /// Graceful shutdown: drain connections, drain the accumulator,
    /// flush the service (commit windows close and fsync). Blocks until
    /// everything has wound down; no acked command is lost.
    pub fn shutdown(mut self) -> Result<(), String> {
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            h.join().map_err(|_| "accept loop panicked".to_string())?;
        }
        // Readers notice the stop flag within one poll interval; writers
        // drain every response that was already read. Join them all.
        let conns = std::mem::take(&mut *self.inner.conns.lock().expect("conns poisoned"));
        for c in conns {
            c.join().map_err(|_| "connection thread panicked")?;
        }
        // Now nothing can submit: close the queues and let the shard
        // workers drain what is left through the normal batch path.
        self.inner.acc.close();
        for w in self.workers.drain(..) {
            w.join().map_err(|_| "shard worker panicked")?;
        }
        // Every applied command's frame is at least buffered; close the
        // windows so even Relaxed acks are durable before we return.
        self.inner.acc.service().flush()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort teardown for the non-graceful path (tests that
        // drop the server); the graceful path already took the handles.
        self.inner.stop.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.inner.conns.lock().expect("conns poisoned"));
        for c in conns {
            let _ = c.join();
        }
        self.inner.acc.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(inner: &Arc<Inner>, listener: &TcpListener) {
    while !inner.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.tel.connections.inc();
                let id = inner.next_client.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(inner);
                let handle = std::thread::Builder::new()
                    .name(format!("dsf-conn-{id}"))
                    .spawn(move || serve_connection(&conn_inner, stream, id))
                    .expect("spawn connection thread");
                inner.conns.lock().expect("conns poisoned").push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// What the reader hands the writer, in request order.
enum WriterItem {
    /// Wait for the slot, write its response.
    Reply(Arc<ReplySlot>),
    /// Barrier: flush the service, then ack.
    Flush,
    /// Ack the shutdown request, then signal the embedding process.
    Shutdown,
}

fn serve_connection(inner: &Arc<Inner>, stream: TcpStream, client: u64) {
    let _ = stream.set_nodelay(true);
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::sync_channel::<WriterItem>(inner.pipeline_depth);
    let writer_inner = Arc::clone(inner);
    let writer = std::thread::Builder::new()
        .name(format!("dsf-conn-{client}-w"))
        .spawn(move || write_loop(&writer_inner, write_half, &rx, client))
        .expect("spawn connection writer");

    read_loop(inner, stream, &tx, client);

    drop(tx); // writer drains the queue, then exits
    let _ = writer.join();
}

/// The reader half: decode frames, route them, preserve order.
fn read_loop(
    inner: &Arc<Inner>,
    mut stream: TcpStream,
    tx: &mpsc::SyncSender<WriterItem>,
    _client: u64,
) {
    loop {
        let req = match read_request_patient(&mut stream, inner) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF or stop-flag wind-down
            Err(err) => {
                // Framing cannot recover from corrupt input: answer with
                // the error (best effort, in order) and close.
                inner.tel.protocol_errors.inc();
                let slot = ReplySlot::ready(Response::Error(format!("protocol error: {err}")));
                let _ = tx.send(WriterItem::Reply(slot));
                return;
            }
        };
        inner.tel.requests.inc();
        let item = match req {
            Request::Insert {
                key,
                value,
                durability,
            } => match inner.acc.submit(Command::Insert(key, value), durability) {
                Ok(slot) => WriterItem::Reply(slot),
                Err(rsp) => WriterItem::Reply(ReplySlot::ready(rsp)),
            },
            Request::Remove { key, durability } => {
                match inner.acc.submit(Command::Remove(key), durability) {
                    Ok(slot) => WriterItem::Reply(slot),
                    Err(rsp) => WriterItem::Reply(ReplySlot::ready(rsp)),
                }
            }
            Request::Get { key } => WriterItem::Reply(inner.acc.read(ReadRequest::Get { key })),
            Request::Scan { start, limit } => {
                WriterItem::Reply(inner.acc.read(ReadRequest::Scan { start, limit }))
            }
            Request::Ping => WriterItem::Reply(inner.acc.read(ReadRequest::Ping)),
            Request::Count => WriterItem::Reply(inner.acc.read(ReadRequest::Count)),
            Request::Flush => WriterItem::Flush,
            Request::Shutdown => WriterItem::Shutdown,
        };
        let is_shutdown = matches!(item, WriterItem::Shutdown);
        if tx.send(item).is_err() {
            return; // writer died (client gone)
        }
        if is_shutdown {
            return; // ack is written by the writer; stop reading
        }
    }
}

/// The writer half: responses out, strictly in request order.
fn write_loop(inner: &Arc<Inner>, stream: TcpStream, rx: &mpsc::Receiver<WriterItem>, client: u64) {
    let commands = inner.tel.client_commands(client);
    let mut w = BufWriter::new(stream);
    while let Ok(item) = rx.recv() {
        let write_one = |w: &mut BufWriter<TcpStream>, item: WriterItem| -> bool {
            let rsp = match item {
                WriterItem::Reply(slot) => slot.wait(),
                WriterItem::Flush => match inner.acc.service().flush() {
                    Ok(()) => Response::Flushed,
                    Err(e) => Response::Error(format!("flush failed: {e}")),
                },
                WriterItem::Shutdown => Response::ShuttingDown,
            };
            if matches!(rsp, Response::Applied { .. }) {
                commands.inc();
            }
            let shutdown = matches!(rsp, Response::ShuttingDown);
            if protocol::write_response(w, &rsp).is_err() {
                return false;
            }
            if shutdown {
                let _ = w.flush();
                inner.request_shutdown();
            }
            true
        };
        if !write_one(&mut w, item) {
            break;
        }
        // Greedily drain whatever else is ready before paying the flush.
        let mut alive = true;
        while let Ok(next) = rx.try_recv() {
            if !write_one(&mut w, next) {
                alive = false;
                break;
            }
        }
        if !alive || w.flush().is_err() {
            break;
        }
    }
    // If the socket died early, keep draining so reply slots are
    // consumed and the reader unblocks; the responses go nowhere.
    while let Ok(item) = rx.recv() {
        if let WriterItem::Reply(slot) = item {
            let _ = slot.wait();
        }
    }
}

/// Reads one request frame, polling the stop flag while the connection
/// is idle. `Ok(None)` on clean EOF *or* when the server is stopping and
/// no frame has started; once a frame's header begins arriving it is
/// read to completion (bounded by [`FRAME_PATIENCE`]).
fn read_request_patient(
    stream: &mut TcpStream,
    inner: &Inner,
) -> Result<Option<Request>, ProtocolError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    let _ = stream.set_read_timeout(Some(POLL));
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(ProtocolError::Torn {
                        needed: header.len() - filled,
                        got: filled,
                    })
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if filled == 0 && inner.stop.load(Ordering::Acquire) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > protocol::MAX_FRAME {
        return Err(ProtocolError::Oversized {
            len: len as u64,
            max: protocol::MAX_FRAME as u64,
        });
    }
    // The frame has started: give the body a firm deadline instead of
    // the poll cadence, then decode.
    let _ = stream.set_read_timeout(Some(FRAME_PATIENCE));
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < body.len() {
        match stream.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(ProtocolError::Torn {
                    needed: len - filled,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Request::decode(&body).map(Some)
}
