//! The per-shard request accumulator: concurrent clients in, group
//! commits out.
//!
//! Every structural request is routed (by the service's own stripe
//! function) to a bounded per-shard queue. One worker thread per shard
//! drains its queue in arrival order, up to [`Config::batch_window`]
//! commands at a time, and applies the whole batch through
//! [`KvService::apply_batch`] — which is exactly one
//! `DenseFile::apply_batch` group apply (PR 5) and, on the durable
//! backend, one WAL group commit (PR 5/PR 6). The consequence is the
//! paper-facing property the server exists to demonstrate: **the number
//! of fsyncs per command falls with the number of concurrent clients**,
//! because requests that arrive while the worker is busy fsyncing the
//! previous batch coalesce into the next one.
//!
//! *Durability on ack* is decided per batch: a batch is applied `Strict`
//! iff it contains at least one `Strict` request (the WAL closes the
//! commit window once, covering the whole batch — a `Relaxed` request
//! sharing the batch is simply upgraded for free). A batch of only
//! `Relaxed` requests lands in the open commit window and its acks go
//! out before the fsync — which is what `Relaxed` means.
//!
//! *Backpressure*: [`Accumulator::submit`] blocks while the shard's
//! queue holds [`Config::queue_capacity`] requests, so a burst cannot
//! queue unboundedly — the connection thread stalls, TCP flow control
//! pushes back on the client, and the pipeline depth stays bounded
//! end to end.

use crate::protocol::{Outcome, Response};
use crate::service::{wire_outcome, KvCommand, KvService};
use crate::tel::ServerTel;
use dsf_durable::Durability;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Accumulator tuning.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Most commands one batch (= one group commit) may carry.
    pub batch_window: usize,
    /// Most requests a shard queue may hold before `submit` blocks.
    pub queue_capacity: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            batch_window: 64,
            queue_capacity: 256,
        }
    }
}

/// A one-shot reply slot: the connection's writer parks on it until the
/// shard worker (or the read path, immediately) fulfills it.
pub struct ReplySlot {
    state: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ReplySlot {
    /// Creates an unfulfilled slot.
    pub fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Creates an already-fulfilled slot (read-path responses).
    pub fn ready(rsp: Response) -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            state: Mutex::new(Some(rsp)),
            ready: Condvar::new(),
        })
    }

    /// Fulfills the slot, waking the waiter.
    pub fn fulfill(&self, rsp: Response) {
        let mut st = self.state.lock().expect("reply slot poisoned");
        *st = Some(rsp);
        self.ready.notify_all();
    }

    /// Blocks until fulfilled and takes the response.
    pub fn wait(&self) -> Response {
        let mut st = self.state.lock().expect("reply slot poisoned");
        loop {
            if let Some(rsp) = st.take() {
                return rsp;
            }
            st = self.ready.wait(st).expect("reply slot poisoned");
        }
    }
}

/// One queued structural request.
struct Pending {
    cmd: KvCommand,
    durability: Durability,
    slot: Arc<ReplySlot>,
    enqueued: Instant,
}

struct ShardQueue {
    q: Mutex<VecDeque<Pending>>,
    /// Wakes the shard worker when work arrives or the queue closes.
    work: Condvar,
    /// Wakes blocked submitters when the worker frees space.
    space: Condvar,
}

/// The accumulator: shared by connection threads (submit side) and owned
/// workers (drain side).
pub struct Accumulator {
    service: Arc<dyn KvService>,
    cfg: Config,
    queues: Vec<ShardQueue>,
    closed: AtomicBool,
    tel: Arc<ServerTel>,
}

impl Accumulator {
    /// Builds the queues (one per service shard). Workers are spawned
    /// separately via [`Accumulator::run_worker`] so the caller owns the
    /// join handles.
    pub fn new(service: Arc<dyn KvService>, cfg: Config, tel: Arc<ServerTel>) -> Arc<Self> {
        assert!(cfg.batch_window >= 1, "batch window must hold a command");
        assert!(
            cfg.queue_capacity >= cfg.batch_window,
            "queue must hold at least one full batch"
        );
        let queues = (0..service.shard_count())
            .map(|_| ShardQueue {
                q: Mutex::new(VecDeque::new()),
                work: Condvar::new(),
                space: Condvar::new(),
            })
            .collect();
        Arc::new(Accumulator {
            service,
            cfg,
            queues,
            closed: AtomicBool::new(false),
            tel,
        })
    }

    /// The service this accumulator feeds.
    pub fn service(&self) -> &Arc<dyn KvService> {
        &self.service
    }

    /// Enqueues one structural command for its shard, blocking while the
    /// shard's queue is full (backpressure). Returns the slot the reply
    /// will arrive on, or an error response if the accumulator is closed.
    pub fn submit(
        &self,
        cmd: KvCommand,
        durability: Durability,
    ) -> Result<Arc<ReplySlot>, Response> {
        if self.closed.load(Ordering::Acquire) {
            return Err(Response::Error("server is shutting down".into()));
        }
        let shard = self.service.shard_of(*cmd.key());
        let slot = ReplySlot::new();
        let sq = &self.queues[shard];
        let mut q = sq.q.lock().expect("shard queue poisoned");
        while q.len() >= self.cfg.queue_capacity {
            if self.closed.load(Ordering::Acquire) {
                return Err(Response::Error("server is shutting down".into()));
            }
            q = sq.space.wait(q).expect("shard queue poisoned");
        }
        // Re-check under the lock: `close` takes every queue lock, so a
        // submit that got here before `close` acquired this lock is seen
        // and drained by the worker's final sweep.
        if self.closed.load(Ordering::Acquire) {
            return Err(Response::Error("server is shutting down".into()));
        }
        q.push_back(Pending {
            cmd,
            durability,
            slot: Arc::clone(&slot),
            enqueued: Instant::now(),
        });
        self.tel.queue_depth[shard].set(q.len() as f64);
        drop(q);
        sq.work.notify_one();
        Ok(slot)
    }

    /// The shard worker loop: drain → group-apply → reply, until the
    /// accumulator closes *and* the queue is empty. Run on a dedicated
    /// thread per shard.
    pub fn run_worker(&self, shard: usize) {
        let sq = &self.queues[shard];
        loop {
            let batch: Vec<Pending> = {
                let mut q = sq.q.lock().expect("shard queue poisoned");
                loop {
                    if !q.is_empty() {
                        break;
                    }
                    if self.closed.load(Ordering::Acquire) {
                        return; // drained and closed: worker done
                    }
                    q = sq.work.wait(q).expect("shard queue poisoned");
                }
                let n = q.len().min(self.cfg.batch_window);
                let batch = q.drain(..n).collect();
                self.tel.queue_depth[shard].set(q.len() as f64);
                batch
            };
            sq.space.notify_all();
            self.apply(shard, batch);
        }
    }

    /// Applies one drained batch and fulfills its reply slots.
    fn apply(&self, shard: usize, batch: Vec<Pending>) {
        // One Strict passenger upgrades the whole batch: the window
        // closes once and every frame in it becomes durable together.
        let durability = if batch.iter().any(|p| p.durability == Durability::Strict) {
            Durability::Strict
        } else {
            Durability::Relaxed
        };
        let cmds: Vec<KvCommand> = batch.iter().map(|p| p.cmd.clone()).collect();
        let mut seqs = vec![0u64; cmds.len()];
        let result = self
            .service
            .apply_batch(shard, &cmds, durability, &mut |i, _o, seq| {
                seqs[i] = seq;
            });
        self.tel.group_commits.inc();
        self.tel.batch_commands.record(batch.len() as u64);
        match result {
            Ok(outcomes) => {
                let now = Instant::now();
                for ((p, outcome), seq) in batch.iter().zip(&outcomes).zip(&seqs) {
                    self.tel.request_micros.record(
                        u64::try_from(now.duration_since(p.enqueued).as_micros())
                            .unwrap_or(u64::MAX),
                    );
                    p.slot.fulfill(Response::Applied {
                        outcome: wire_outcome(outcome),
                        seq: *seq,
                    });
                }
            }
            Err(msg) => {
                // The backend rolled the batch back (or refused it);
                // nobody gets an ack, everybody learns why.
                for p in &batch {
                    p.slot
                        .fulfill(Response::Error(format!("batch failed: {msg}")));
                }
            }
        }
    }

    /// Closes the accumulator: new submits fail fast, workers drain what
    /// is queued and exit. Does not flush the service — the server does
    /// that once every worker has joined.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for sq in &self.queues {
            // Taking each lock fences racing submitters: after this loop,
            // every queued request will be drained, every later submit
            // fails fast.
            drop(sq.q.lock().expect("shard queue poisoned"));
            sq.work.notify_all();
            sq.space.notify_all();
        }
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Immediate (unqueued) execution of the read path, returning an
    /// already-fulfilled slot so reads keep their place in the
    /// connection's response order.
    pub fn read(&self, req: ReadRequest) -> Arc<ReplySlot> {
        let rsp = match req {
            ReadRequest::Get { key } => Response::Value(self.service.get(key)),
            ReadRequest::Scan { start, limit } => {
                Response::Entries(self.service.scan(start, limit as usize))
            }
            ReadRequest::Count => Response::Count(self.service.len()),
            ReadRequest::Ping => Response::Pong,
        };
        ReplySlot::ready(rsp)
    }
}

/// The read-path subset of the protocol (no durability, no queueing).
pub enum ReadRequest {
    /// Point lookup.
    Get {
        /// Record key.
        key: u64,
    },
    /// Range scan.
    Scan {
        /// First key of interest.
        start: u64,
        /// Maximum records returned.
        limit: u32,
    },
    /// Total records.
    Count,
    /// Liveness probe.
    Ping,
}

/// Maps a just-applied outcome to whether it mutated the file (used by
/// per-client command counters).
pub fn is_structural(outcome: &Outcome) -> bool {
    !matches!(outcome, Outcome::NotFound | Outcome::Rejected(_))
}
