//! [`KvService`] — the storage facade the server fronts.
//!
//! The network layer never touches a file directly: every backend is a
//! `KvService`, a sharded, internally synchronized key→value store whose
//! write path is *batched by construction* — the accumulator hands each
//! shard worker a whole batch, and the service applies it through the
//! group-commit machinery of the layer it wraps:
//!
//! * [`ShardedKv`] wraps [`dsf_concurrent::ShardedFile`]: in-memory,
//!   `N`-shard, one lock acquisition per shard per batch
//!   (`apply_batch_with`). `Durability` is accepted and ignored (there is
//!   no log); [`KvService::flush`] is a no-op.
//! * [`DurableKv`] wraps one [`dsf_durable::DurableFile`] per shard
//!   (directory `shard-<i>` under its root), routed by the *same* stripe
//!   function `ShardedFile` uses. Batches go through
//!   `apply_batch_durable_with`, so a batch is **one group commit**:
//!   every frame appended, then one `write` (+ one `fsync` when the batch
//!   carries a `Strict` request or the commit window closes).
//!
//! Both backends report the flight-recorder seq of every command to the
//! caller's observer, which is how responses get stamped end-to-end.

use crate::protocol::Outcome;
use dsf_concurrent::ShardedFile;
use dsf_core::{Command, CommandOutcome, DenseFileConfig};
use dsf_durable::{Durability, DurableError, DurableFile, SyncPolicy};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The command/value types the wire protocol fixes.
pub type KvCommand = Command<u64, String>;
/// Outcome type matching [`KvCommand`].
pub type KvOutcome = CommandOutcome<String>;

/// A sharded key→value store the server can front. Implementations are
/// internally synchronized: `apply_batch` takes `&self` and may be called
/// concurrently for *different* shards (the accumulator guarantees one
/// in-flight batch per shard).
pub trait KvService: Send + Sync + 'static {
    /// Number of independent shards (accumulator queues).
    fn shard_count(&self) -> usize;

    /// The shard `key`'s commands route to (`0 ≤ _ < shard_count`).
    fn shard_of(&self, key: u64) -> usize;

    /// Applies one batch of commands, all of which route to `shard`, with
    /// the requested durability-on-ack: `Strict` returns only after the
    /// batch's frames are fsynced, `Relaxed` as soon as they are applied
    /// and buffered. `observe` fires once per command with
    /// `(index, outcome, flight_seq)` in batch order.
    fn apply_batch(
        &self,
        shard: usize,
        cmds: &[KvCommand],
        durability: Durability,
        observe: &mut dyn FnMut(usize, &KvOutcome, u64),
    ) -> Result<Vec<KvOutcome>, String>;

    /// Point lookup (read path; bypasses the accumulator).
    fn get(&self, key: u64) -> Option<String>;

    /// At most `limit` records with key ≥ `start`, ascending.
    fn scan(&self, start: u64, limit: usize) -> Vec<(u64, String)>;

    /// Total records.
    fn len(&self) -> u64;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes any open commit window and syncs: after `flush` returns,
    /// every previously acked command (including `Relaxed` ones) is
    /// durable. In-memory backends no-op.
    fn flush(&self) -> Result<(), String>;
}

/// Converts a core outcome into its wire form.
pub fn wire_outcome(o: &KvOutcome) -> Outcome {
    match o {
        CommandOutcome::Inserted => Outcome::Inserted,
        CommandOutcome::Replaced(old) => Outcome::Replaced(old.clone()),
        CommandOutcome::Removed(old) => Outcome::Removed(old.clone()),
        CommandOutcome::NotFound => Outcome::NotFound,
        CommandOutcome::Rejected(e) => Outcome::Rejected(e.to_string()),
    }
}

// ---------------------------------------------------------------------
// In-memory backend.
// ---------------------------------------------------------------------

/// [`KvService`] over an in-memory [`ShardedFile`] — the zero-durability
/// backend (benchmarks, equivalence tests, caches). The wrapped file is
/// shared (`Arc`), so a test can keep a handle and snapshot the exact
/// state the server mutated.
pub struct ShardedKv {
    file: Arc<ShardedFile<String>>,
}

impl ShardedKv {
    /// Wraps an existing sharded file.
    pub fn new(file: Arc<ShardedFile<String>>) -> Self {
        ShardedKv { file }
    }

    /// Builds a fresh `shards × per_shard` file.
    pub fn with_config(shards: u32, per_shard: DenseFileConfig) -> Result<Self, String> {
        Ok(ShardedKv {
            file: Arc::new(ShardedFile::new(shards, per_shard).map_err(|e| e.to_string())?),
        })
    }

    /// The wrapped file (for snapshots and invariant checks).
    pub fn file(&self) -> &Arc<ShardedFile<String>> {
        &self.file
    }
}

impl KvService for ShardedKv {
    fn shard_count(&self) -> usize {
        self.file.shard_count() as usize
    }

    fn shard_of(&self, key: u64) -> usize {
        self.file.shard_of(key)
    }

    fn apply_batch(
        &self,
        _shard: usize,
        cmds: &[KvCommand],
        _durability: Durability,
        observe: &mut dyn FnMut(usize, &KvOutcome, u64),
    ) -> Result<Vec<KvOutcome>, String> {
        // All commands of a batch route to one shard, so ShardedFile's own
        // partitioning yields a single sub-batch: one scoped thread, one
        // lock acquisition, one `DenseFile::apply_batch` — the PR 5 group
        // apply. Seqs are captured on that thread, then replayed to the
        // caller's observer in batch order.
        let seqs = Mutex::new(vec![0u64; cmds.len()]);
        let outcomes = self.file.apply_batch_with(cmds, |i, _o, seq| {
            seqs.lock().expect("seq collector poisoned")[i] = seq;
        });
        let seqs = seqs.into_inner().expect("seq collector poisoned");
        for (i, o) in outcomes.iter().enumerate() {
            observe(i, o, seqs[i]);
        }
        Ok(outcomes)
    }

    fn get(&self, key: u64) -> Option<String> {
        self.file.get(&key)
    }

    fn scan(&self, start: u64, limit: usize) -> Vec<(u64, String)> {
        self.file.collect_range(start, u64::MAX, limit)
    }

    fn len(&self) -> u64 {
        self.file.len()
    }

    fn flush(&self) -> Result<(), String> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Durable backend.
// ---------------------------------------------------------------------

/// [`KvService`] over one [`DurableFile`] per shard — the production
/// backend. Each shard lives in `<root>/shard-<i>` with its own WAL and
/// commit window; the stripe router matches [`ShardedFile`]'s exactly
/// (ceil-divided key space), so the two backends shard identically.
pub struct DurableKv {
    shards: Vec<Mutex<DurableFile<u64, String>>>,
    stripe: u64,
    root: PathBuf,
}

impl DurableKv {
    /// Creates `shards` fresh durable files under `root` (fails if any
    /// shard directory already holds a checkpoint).
    pub fn create(
        root: impl AsRef<Path>,
        shards: u32,
        per_shard: DenseFileConfig,
        policy: SyncPolicy,
    ) -> Result<Self, DurableError> {
        assert!(shards > 0, "at least one shard required");
        let root = root.as_ref().to_path_buf();
        let mut v = Vec::with_capacity(shards as usize);
        for s in 0..shards {
            v.push(Mutex::new(DurableFile::create(
                root.join(format!("shard-{s}")),
                per_shard,
                policy,
            )?));
        }
        Ok(DurableKv {
            shards: v,
            stripe: (u64::MAX / u64::from(shards)).saturating_add(1),
            root,
        })
    }

    /// Recovers an existing store: opens `shard-0`, `shard-1`, … until a
    /// directory is missing. At least `shard-0` must exist.
    pub fn open(root: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self, DurableError> {
        let root = root.as_ref().to_path_buf();
        let mut v = Vec::new();
        loop {
            let dir = root.join(format!("shard-{}", v.len()));
            if !dir.is_dir() {
                break;
            }
            v.push(Mutex::new(DurableFile::open(dir, policy)?));
        }
        if v.is_empty() {
            return Err(DurableError::NotInitialized);
        }
        let shards = v.len() as u64;
        Ok(DurableKv {
            shards: v,
            stripe: (u64::MAX / shards).saturating_add(1),
            root,
        })
    }

    /// The directory the shards live under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Runs `f` with shard `s`'s file locked (tests, stats).
    pub fn with_shard<T>(&self, s: usize, f: impl FnOnce(&DurableFile<u64, String>) -> T) -> T {
        f(&self.shards[s].lock().expect("shard poisoned"))
    }
}

impl KvService for DurableKv {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: u64) -> usize {
        ((key / self.stripe) as usize).min(self.shards.len() - 1)
    }

    fn apply_batch(
        &self,
        shard: usize,
        cmds: &[KvCommand],
        durability: Durability,
        observe: &mut dyn FnMut(usize, &KvOutcome, u64),
    ) -> Result<Vec<KvOutcome>, String> {
        let mut file = self.shards[shard].lock().expect("shard poisoned");
        file.apply_batch_durable_with(cmds, durability, |i, o, seq| observe(i, o, seq))
            .map_err(|e| e.to_string())
    }

    fn get(&self, key: u64) -> Option<String> {
        self.shards[self.shard_of(key)]
            .lock()
            .expect("shard poisoned")
            .get(&key)
            .cloned()
    }

    fn scan(&self, start: u64, limit: usize) -> Vec<(u64, String)> {
        // Shards are ascending key stripes, so walking them in order
        // yields globally sorted output; stop as soon as `limit` is met.
        let mut out = Vec::with_capacity(limit.min(64));
        for shard in &self.shards {
            if out.len() >= limit {
                break;
            }
            let file = shard.lock().expect("shard poisoned");
            for (k, v) in file.range(start..) {
                out.push((*k, v.clone()));
                if out.len() >= limit {
                    break;
                }
            }
        }
        out
    }

    fn len(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    fn flush(&self) -> Result<(), String> {
        for shard in &self.shards {
            shard
                .lock()
                .expect("shard poisoned")
                .sync()
                .map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}
