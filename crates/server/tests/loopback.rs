//! End-to-end loopback tests: a real `Server` on `127.0.0.1`, real
//! `Client`s, and the acceptance-criteria equivalence check — a
//! pipelined multi-client run must leave the store byte-identical to
//! applying each client's stream directly, in arrival order.

use dsf_core::{Command, DenseFileConfig};
use dsf_durable::Durability;
use dsf_server::{protocol::Outcome, Client, Request, Response, Server, ServerConfig, ShardedKv};
use std::sync::Arc;

fn cfg() -> DenseFileConfig {
    DenseFileConfig::control2(32, 8, 48)
}

fn serve_sharded(shards: u32) -> (Server, Arc<dsf_concurrent::ShardedFile<String>>) {
    let kv = ShardedKv::with_config(shards, cfg()).expect("backend");
    let file = Arc::clone(kv.file());
    let server = Server::bind(Arc::new(kv), ServerConfig::default(), "127.0.0.1:0").expect("bind");
    (server, file)
}

#[test]
fn ping_and_crud_round_trip() {
    let (server, _file) = serve_sharded(2);
    let mut c = Client::connect(server.local_addr()).expect("connect");

    assert!(matches!(c.call(&Request::Ping).unwrap(), Response::Pong));
    let rsp = c
        .call(&Request::Insert {
            key: 7,
            value: "seven".into(),
            durability: Durability::Strict,
        })
        .unwrap();
    match rsp {
        Response::Applied { outcome, .. } => assert!(matches!(outcome, Outcome::Inserted)),
        other => panic!("unexpected response: {other:?}"),
    }
    assert!(matches!(
        c.call(&Request::Get { key: 7 }).unwrap(),
        Response::Value(Some(v)) if v == "seven"
    ));
    assert!(matches!(
        c.call(&Request::Count).unwrap(),
        Response::Count(1)
    ));
    assert!(matches!(
        c.call(&Request::Get { key: 8 }).unwrap(),
        Response::Value(None)
    ));
    server.shutdown().expect("shutdown");
}

/// Same-key commands from one connection are applied in send order:
/// outcomes must match the sequential model exactly.
#[test]
fn single_connection_preserves_order() {
    let (server, _file) = serve_sharded(2);
    let mut c = Client::connect(server.local_addr()).expect("connect");

    let reqs = [
        Request::Insert {
            key: 5,
            value: "a".into(),
            durability: Durability::Relaxed,
        },
        Request::Insert {
            key: 5,
            value: "b".into(),
            durability: Durability::Relaxed,
        },
        Request::Remove {
            key: 5,
            durability: Durability::Relaxed,
        },
        Request::Remove {
            key: 5,
            durability: Durability::Relaxed,
        },
    ];
    // Fully pipelined: all four in flight before the first reply is read.
    for r in &reqs {
        c.send(r).unwrap();
    }
    let outcomes: Vec<Outcome> = (0..reqs.len())
        .map(|_| match c.recv().unwrap() {
            Response::Applied { outcome, .. } => outcome,
            other => panic!("unexpected response: {other:?}"),
        })
        .collect();
    assert!(matches!(outcomes[0], Outcome::Inserted));
    assert!(matches!(&outcomes[1], Outcome::Replaced(old) if old == "a"));
    assert!(matches!(&outcomes[2], Outcome::Removed(old) if old == "b"));
    assert!(matches!(outcomes[3], Outcome::NotFound));
    assert!(matches!(
        c.call(&Request::Get { key: 5 }).unwrap(),
        Response::Value(None)
    ));
    server.shutdown().expect("shutdown");
}

/// The acceptance-criteria equivalence run: N pipelined clients, each on
/// its own shard (so per-shard arrival order is that client's send
/// order), must produce (a) per-key outcomes identical to applying each
/// client's stream directly and (b) a byte-identical snapshot.
#[test]
fn pipelined_clients_equal_direct_batches() {
    const SHARDS: u32 = 4;
    const OPS: usize = 400;
    let (server, file) = serve_sharded(SHARDS);
    let stripe = (u64::MAX / u64::from(SHARDS)).saturating_add(1);

    // Each client's deterministic mixed stream on its own shard: inserts
    // with periodic overwrites and removes so every outcome kind shows up.
    fn stream(client: u64, stripe: u64) -> Vec<Command<u64, String>> {
        let base = client * stripe;
        (0..OPS as u64)
            .map(|j| match j % 5 {
                4 => Command::Remove(base + (j / 2)),
                _ => Command::Insert(base + j % 97, format!("c{client}-{j}")),
            })
            .collect()
    }

    let handles: Vec<_> = (0..u64::from(SHARDS))
        .map(|client| {
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let cmds = stream(client, stripe);
                let mut outcomes = Vec::with_capacity(cmds.len());
                // Pipeline at depth 8.
                for chunk in cmds.chunks(8) {
                    for cmd in chunk {
                        let req = match cmd {
                            Command::Insert(k, v) => Request::Insert {
                                key: *k,
                                value: v.clone(),
                                durability: if k % 3 == 0 {
                                    Durability::Strict
                                } else {
                                    Durability::Relaxed
                                },
                            },
                            Command::Remove(k) => Request::Remove {
                                key: *k,
                                durability: Durability::Relaxed,
                            },
                        };
                        c.send(&req).unwrap();
                    }
                    for _ in chunk {
                        match c.recv().unwrap() {
                            Response::Applied { outcome, .. } => outcomes.push(outcome),
                            other => panic!("unexpected response: {other:?}"),
                        }
                    }
                }
                outcomes
            })
        })
        .collect();
    let served: Vec<Vec<Outcome>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    server.shutdown().expect("shutdown");

    // Reference: the same streams applied directly, one batch per client
    // (a client's commands all hit one shard, so within-shard order is
    // exactly the client's order — the same order the server saw).
    let reference = dsf_concurrent::ShardedFile::<String>::new(SHARDS, cfg()).expect("reference");
    for client in 0..u64::from(SHARDS) {
        let cmds = stream(client, stripe);
        let outcomes = reference.apply_batch(&cmds);
        for (i, (got, want)) in served[client as usize].iter().zip(&outcomes).enumerate() {
            let matches = matches!(
                (got, want),
                (Outcome::Inserted, dsf_core::CommandOutcome::Inserted)
                    | (Outcome::NotFound, dsf_core::CommandOutcome::NotFound)
            ) || match (got, want) {
                (Outcome::Replaced(a), dsf_core::CommandOutcome::Replaced(b)) => a == b,
                (Outcome::Removed(a), dsf_core::CommandOutcome::Removed(b)) => a == b,
                _ => false,
            };
            assert!(
                matches,
                "client {client} op {i}: served {got:?} vs direct {want:?}"
            );
        }
    }

    let mut via_server = Vec::new();
    file.write_snapshot(&mut via_server).expect("snapshot");
    let mut direct = Vec::new();
    reference.write_snapshot(&mut direct).expect("snapshot");
    assert_eq!(via_server, direct, "snapshots diverge");
}

/// Every structural ack carries a non-zero flight seq, and seqs within
/// one connection are strictly increasing (same shard, ordered queue).
#[test]
fn acks_carry_increasing_flight_seqs() {
    dsf_flight::enable();
    let (server, _file) = serve_sharded(1);
    let mut c = Client::connect(server.local_addr()).expect("connect");
    let mut last = 0u64;
    for j in 0..32u64 {
        c.send(&Request::Insert {
            key: j,
            value: format!("v{j}"),
            durability: Durability::Relaxed,
        })
        .unwrap();
    }
    for _ in 0..32 {
        match c.recv().unwrap() {
            Response::Applied { seq, .. } => {
                assert!(seq > last, "seq {seq} not above {last}");
                last = seq;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    server.shutdown().expect("shutdown");
    dsf_flight::disable();
}

/// A garbage frame gets an error response (not a hang, not a panic) and
/// the connection is closed; the server keeps serving other clients.
#[test]
fn protocol_error_closes_connection_not_server() {
    use std::io::{Read, Write};
    let (server, _file) = serve_sharded(2);

    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    // Valid length prefix, unknown tag.
    raw.write_all(&[1, 0, 0, 0, 0xEE]).unwrap();
    raw.flush().unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).expect("server should close");
    assert!(!buf.is_empty(), "expected an error frame before close");

    // An oversized header must also be answered and closed, well before
    // any attempt to allocate the claimed length.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).expect("server should close");
    assert!(!buf.is_empty(), "expected an error frame before close");

    // The server is still healthy.
    let mut c = Client::connect(server.local_addr()).expect("connect");
    assert!(matches!(c.call(&Request::Ping).unwrap(), Response::Pong));
    server.shutdown().expect("shutdown");
}

/// The Shutdown frame is acked, surfaces via `wait_shutdown_request`,
/// and subsequent structural submits are refused.
#[test]
fn shutdown_request_over_the_wire() {
    let (server, _file) = serve_sharded(2);
    let mut c = Client::connect(server.local_addr()).expect("connect");
    assert!(!server.shutdown_requested());
    assert!(matches!(
        c.call(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    ));
    server.wait_shutdown_request();
    assert!(server.shutdown_requested());
    server.shutdown().expect("shutdown");
}
