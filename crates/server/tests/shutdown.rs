//! Graceful-shutdown durability: after `Server::shutdown()` returns, a
//! fresh process (simulated by reopening the store) must hold every
//! command the server acked — including `Relaxed` ones, whose frames
//! were only buffered in an open commit window at ack time.

use dsf_core::DenseFileConfig;
use dsf_durable::{Durability, SyncPolicy};
use dsf_server::{protocol::Outcome, Client, DurableKv, Request, Response, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dsf-serve-shutdown-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> DenseFileConfig {
    // Capacity is min_density × pages per shard; keep well above the
    // keys a test writes into one shard (all test keys land in shard 0).
    DenseFileConfig::control2(256, 8, 48)
}

/// A long-lived commit window, so `Relaxed` acks are *not* yet on disk
/// when the shutdown starts — the drain itself must make them durable.
fn window() -> SyncPolicy {
    SyncPolicy::CommitWindow {
        max_frames: 10_000,
        max_micros: 60_000_000,
    }
}

#[test]
fn no_acked_command_lost_across_shutdown_and_restart() {
    let root = tempdir("acked");
    let kv = DurableKv::create(&root, 2, cfg(), window()).expect("create");
    let server = Server::bind(Arc::new(kv), ServerConfig::default(), "127.0.0.1:0").expect("bind");

    // Concurrent clients, mixed durability, all acks recorded.
    let handles: Vec<_> = (0..4u64)
        .map(|client| {
            let addr = server.local_addr();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for j in 0..100u64 {
                    let key = client * 1_000 + j;
                    let durability = if j % 4 == 0 {
                        Durability::Strict
                    } else {
                        Durability::Relaxed
                    };
                    c.send(&Request::Insert {
                        key,
                        value: format!("v{key}"),
                        durability,
                    })
                    .unwrap();
                }
                // Drain every ack: after this, all 100 sends were acked.
                while c.in_flight() > 0 {
                    match c.recv().unwrap() {
                        Response::Applied { .. } => {}
                        other => panic!("unexpected: {other:?}"),
                    }
                }
                (client * 1_000..client * 1_000 + 100).collect::<Vec<u64>>()
            })
        })
        .collect();
    let acked: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();

    server.shutdown().expect("graceful shutdown");

    // "Restart": reopen the same directory and check every acked key.
    let reopened = DurableKv::open(&root, window()).expect("reopen");
    use dsf_server::KvService;
    for key in &acked {
        assert_eq!(
            reopened.get(*key).as_deref(),
            Some(format!("v{key}").as_str()),
            "acked key {key} lost across shutdown+restart"
        );
    }
    assert_eq!(reopened.len(), acked.len() as u64);
    let _ = std::fs::remove_dir_all(&root);
}

/// Submits that race the shutdown are either acked (and then durable) or
/// refused with an error — never silently dropped.
#[test]
fn racing_submits_are_acked_or_refused() {
    let root = tempdir("race");
    let kv = DurableKv::create(&root, 2, cfg(), window()).expect("create");
    let server = Server::bind(Arc::new(kv), ServerConfig::default(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        let mut acked = Vec::new();
        for key in 0..2_000u64 {
            if c.send(&Request::Insert {
                key,
                value: format!("v{key}"),
                durability: Durability::Relaxed,
            })
            .is_err()
            {
                break; // connection torn down by shutdown: fine
            }
            match c.recv() {
                Ok(Response::Applied { outcome, .. }) => {
                    assert!(matches!(outcome, Outcome::Inserted));
                    acked.push(key);
                }
                Ok(Response::Error(_)) | Err(_) => break, // refused: fine
                Ok(other) => panic!("unexpected: {other:?}"),
            }
        }
        acked
    });
    // Let some traffic through, then pull the plug mid-stream.
    std::thread::sleep(std::time::Duration::from_millis(50));
    server.shutdown().expect("graceful shutdown");
    let acked = writer.join().unwrap();
    assert!(!acked.is_empty(), "no traffic got through before shutdown");

    let reopened = DurableKv::open(&root, window()).expect("reopen");
    use dsf_server::KvService;
    for key in &acked {
        assert_eq!(
            reopened.get(*key).as_deref(),
            Some(format!("v{key}").as_str()),
            "acked key {key} lost across racing shutdown"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}
