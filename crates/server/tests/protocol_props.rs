//! Property tests for the wire protocol: every frame type round-trips,
//! and arbitrary/torn/oversized input is rejected with a protocol error
//! — never a panic, never an unbounded allocation.

use dsf_durable::Durability;
use dsf_server::protocol::{self, Outcome, ProtocolError, Request, Response, MAX_FRAME, MAX_SCAN};
use proptest::prelude::*;

fn durability(bit: bool) -> Durability {
    if bit {
        Durability::Strict
    } else {
        Durability::Relaxed
    }
}

fn value(n: u64) -> String {
    // Exercise empty, short, and multi-byte-UTF-8 payloads.
    match n % 4 {
        0 => String::new(),
        1 => format!("v{n}"),
        2 => "π≈3.14159 · ε>0".repeat((n % 7) as usize + 1),
        _ => "x".repeat((n % 512) as usize),
    }
}

fn request(choice: u8, key: u64, n: u64, bit: bool) -> Request {
    match choice % 8 {
        0 => Request::Insert {
            key,
            value: value(n),
            durability: durability(bit),
        },
        1 => Request::Remove {
            key,
            durability: durability(bit),
        },
        2 => Request::Get { key },
        3 => Request::Scan {
            start: key,
            limit: (n % u64::from(MAX_SCAN)) as u32,
        },
        4 => Request::Ping,
        5 => Request::Count,
        6 => Request::Flush,
        _ => Request::Shutdown,
    }
}

fn response(choice: u8, key: u64, n: u64) -> Response {
    match choice % 8 {
        0 => Response::Applied {
            outcome: match n % 5 {
                0 => Outcome::Inserted,
                1 => Outcome::Replaced(value(n)),
                2 => Outcome::Removed(value(n)),
                3 => Outcome::NotFound,
                _ => Outcome::Rejected(value(n)),
            },
            seq: key,
        },
        1 => Response::Value((n.is_multiple_of(2)).then(|| value(n))),
        2 => Response::Entries(
            (0..n % 17)
                .map(|i| (key.wrapping_add(i), value(i)))
                .collect(),
        ),
        3 => Response::Pong,
        4 => Response::Count(key),
        5 => Response::Flushed,
        6 => Response::ShuttingDown,
        _ => Response::Error(value(n)),
    }
}

proptest! {
    /// Requests survive encode→frame→read intact.
    #[test]
    fn request_round_trips(choice in any::<u8>(), key in any::<u64>(), n in any::<u64>(), bit in any::<bool>()) {
        let req = request(choice, key, n, bit);
        let mut wire = Vec::new();
        protocol::write_request(&mut wire, &req).unwrap();
        let back = protocol::read_request(&mut wire.as_slice()).unwrap().unwrap();
        prop_assert_eq!(format!("{req:?}"), format!("{back:?}"));
        // And the stream is exactly consumed: a second read sees clean EOF.
        let mut r = wire.as_slice();
        protocol::read_request(&mut r).unwrap();
        prop_assert!(protocol::read_request(&mut r).unwrap().is_none());
    }

    /// Responses survive encode→frame→read intact.
    #[test]
    fn response_round_trips(choice in any::<u8>(), key in any::<u64>(), n in any::<u64>()) {
        let rsp = response(choice, key, n);
        let mut wire = Vec::new();
        protocol::write_response(&mut wire, &rsp).unwrap();
        let back = protocol::read_response(&mut wire.as_slice()).unwrap().unwrap();
        prop_assert_eq!(format!("{rsp:?}"), format!("{back:?}"));
    }

    /// Truncating a valid frame at any point yields `Torn`/`Io` — or
    /// `Ok(None)` exactly when the cut lands on a frame boundary.
    #[test]
    fn torn_frames_error_cleanly(choice in any::<u8>(), key in any::<u64>(), n in any::<u64>(), cut in any::<u64>()) {
        let req = request(choice, key, n, false);
        let mut wire = Vec::new();
        protocol::write_request(&mut wire, &req).unwrap();
        let cut = (cut % wire.len() as u64) as usize; // strictly short
        match protocol::read_request(&mut &wire[..cut]) {
            Ok(None) => prop_assert_eq!(cut, 0, "mid-frame cut reported as clean EOF"),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded"),
            Err(ProtocolError::Torn { .. }) | Err(ProtocolError::Io(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Arbitrary bytes never panic the decoder; oversized headers are
    /// refused before any allocation of the claimed length.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = protocol::read_request(&mut bytes.as_slice());
        let _ = protocol::read_response(&mut bytes.as_slice());
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// A header claiming more than MAX_FRAME is `Oversized` regardless of
    /// what (if anything) follows.
    #[test]
    fn oversized_headers_refused(extra in any::<u32>(), tail in prop::collection::vec(any::<u8>(), 0..16)) {
        let len = (MAX_FRAME as u32).saturating_add(extra % 1024 + 1);
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(&tail);
        match protocol::read_request(&mut wire.as_slice()) {
            Err(ProtocolError::Oversized { .. }) => {}
            other => prop_assert!(false, "expected Oversized, got {other:?}"),
        }
    }

    /// A frame with valid length but trailing bytes after the payload is
    /// rejected (`Trailing`), not silently accepted.
    #[test]
    fn trailing_garbage_rejected(key in any::<u64>(), junk in 1u8..16) {
        let req = Request::Get { key };
        let mut body = Vec::new();
        req.encode(&mut body);
        body.extend(std::iter::repeat_n(0xAB, junk as usize));
        let mut wire = Vec::new();
        protocol::write_frame(&mut wire, &body).unwrap();
        match protocol::read_request(&mut wire.as_slice()) {
            Err(ProtocolError::Trailing { .. }) => {}
            other => prop_assert!(false, "expected Trailing, got {other:?}"),
        }
    }
}
