//! # dsf-baselines — the structures the paper argues against (and beyond)
//!
//! Three comparators, all measured in the same page-access cost model as
//! the dense sequential file:
//!
//! * [`NaiveSequentialFile`] — the classical fully-packed sequential file
//!   (`d = D`). Perfect for streams, but every insertion shifts the entire
//!   suffix of the file: `O(M)` page accesses per update. This is the
//!   starting point of the paper's introduction.
//! * [`OverflowFile`] — an ISAM-style sequential file with per-page
//!   overflow chains, the classical mitigation the paper's introduction
//!   (citing Wiederhold) rejects: it works until "a large surge of
//!   insertions is attempted in a relatively small portion of the
//!   sequential file", after which chains grow without bound and stream
//!   retrieval degenerates into chain-chasing seeks. The
//!   `exp_overflow_burst` experiment reproduces that collapse.
//! * [`AmortizedPma`] — a modern two-threshold Packed Memory Array (the
//!   Itai-Konheim-Rodeh / Bender-style descendant of this paper's CONTROL 1):
//!   gapped segments with height-interpolated density thresholds and
//!   smallest-legal-window rebalancing. Amortized `O(log²N)` element moves,
//!   but — like CONTROL 1 and unlike CONTROL 2 — individual updates can
//!   trigger an `O(M)`-page rebalance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod naive;
mod overflow;
mod pma;

pub use naive::NaiveSequentialFile;
pub use overflow::{OverflowFile, OverflowStats};
pub use pma::{AmortizedPma, PmaConfig, PmaError};
