//! The classical fully-packed sequential file (`d = D`).
//!
//! Records occupy ranks `0..n` packed at exactly `page_capacity` per page;
//! rank `r` lives on page `r / page_capacity`. Lookups and scans are
//! optimal, but inserting at rank `r` shifts every later record one rank to
//! the right — touching every page from `r`'s to the last. This is the
//! `O(M)` update cost the paper's whole line of work removes.

use dsf_pagestore::{AccessKind, IoStats, Key, Record, TraceBuffer};

/// A fully-packed sequential file.
#[derive(Debug)]
pub struct NaiveSequentialFile<K, V> {
    recs: Vec<Record<K, V>>,
    page_capacity: usize,
    stats: IoStats,
    trace: TraceBuffer,
}

impl<K: Key, V> NaiveSequentialFile<K, V> {
    /// Creates an empty file with `page_capacity` records per page.
    ///
    /// # Panics
    ///
    /// Panics if `page_capacity` is zero.
    pub fn new(page_capacity: usize) -> Self {
        assert!(page_capacity > 0, "page_capacity must be non-zero");
        NaiveSequentialFile {
            recs: Vec::new(),
            page_capacity,
            stats: IoStats::new(),
            trace: TraceBuffer::new(),
        }
    }

    /// Records stored.
    pub fn len(&self) -> u64 {
        self.recs.len() as u64
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Pages currently occupied.
    pub fn pages_used(&self) -> u64 {
        (self.recs.len().div_ceil(self.page_capacity)) as u64
    }

    /// Page-access counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Optional physical access trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    fn page_of(&self, rank: usize) -> u64 {
        (rank / self.page_capacity) as u64
    }

    fn charge_span(&self, lo: usize, hi: usize, kind: AccessKind) {
        if lo >= hi {
            return;
        }
        let first = self.page_of(lo);
        let last = self.page_of(hi - 1);
        match kind {
            AccessKind::Read => self.stats.charge_reads(last - first + 1),
            AccessKind::Write => self.stats.charge_writes(last - first + 1),
        }
        if self.trace.is_enabled() {
            for p in first..=last {
                self.trace.record(p, kind);
            }
        }
    }

    /// Binary search charging one read per distinct page probed.
    fn search(&self, key: &K) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.recs.len());
        let mut last_page = u64::MAX;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let page = self.page_of(mid);
            if page != last_page {
                self.stats.charge_reads(1);
                self.trace.record(page, AccessKind::Read);
                last_page = page;
            }
            match self.recs[mid].key.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.search(key).ok().map(|i| &self.recs[i].value)
    }

    /// Inserts a record; every later record shifts one rank right, touching
    /// every page from the insertion point to the end of the file.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.search(&key) {
            Ok(i) => {
                self.charge_span(i, i + 1, AccessKind::Write);
                Some(std::mem::replace(&mut self.recs[i].value, value))
            }
            Err(i) => {
                let new_len = self.recs.len() + 1;
                self.charge_span(i, new_len, AccessKind::Read);
                self.charge_span(i, new_len, AccessKind::Write);
                self.recs.insert(i, Record::new(key, value));
                None
            }
        }
    }

    /// Deletes a key; every later record shifts one rank left.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.search(key) {
            Ok(i) => {
                let old_len = self.recs.len();
                self.charge_span(i, old_len, AccessKind::Read);
                self.charge_span(i, old_len, AccessKind::Write);
                Some(self.recs.remove(i).value)
            }
            Err(_) => None,
        }
    }

    /// Bulk-loads strictly-ascending records (free of charge: an offline
    /// build).
    pub fn bulk_load<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (K, V)>,
    {
        assert!(self.recs.is_empty(), "bulk_load requires an empty file");
        for (k, v) in items {
            if let Some(prev) = self.recs.last() {
                assert!(prev.key < k, "bulk_load input must be strictly ascending");
            }
            self.recs.push(Record::new(k, v));
        }
    }

    /// Streams up to `limit` records with keys ≥ `start` in key order,
    /// charging one read per page crossed (the optimal stream retrieval
    /// every other structure is compared against).
    pub fn scan_from<F: FnMut(&K, &V)>(&self, start: &K, limit: usize, mut f: F) {
        let begin = match self.search(start) {
            Ok(i) => i,
            Err(i) => i,
        };
        let end = (begin + limit).min(self.recs.len());
        self.charge_span(begin, end, AccessKind::Read);
        for rec in &self.recs[begin..end] {
            f(&rec.key, &rec.value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_order() {
        let mut f = NaiveSequentialFile::new(8);
        for k in [5u64, 1, 9, 3, 7] {
            assert_eq!(f.insert(k, k * 10), None);
        }
        assert_eq!(f.len(), 5);
        assert_eq!(f.get(&3), Some(&30));
        assert_eq!(f.insert(3, 31), Some(30));
        assert_eq!(f.remove(&3), Some(31));
        assert_eq!(f.remove(&3), None);
        let mut keys = Vec::new();
        f.scan_from(&0, 100, |k, _| keys.push(*k));
        assert_eq!(keys, vec![1, 5, 7, 9]);
    }

    #[test]
    fn front_insert_touches_every_page() {
        let mut f = NaiveSequentialFile::new(4);
        f.bulk_load((10..110u64).map(|k| (k, ()))); // 100 records = 25 pages
        let snap = f.stats().snapshot();
        f.insert(5, ());
        let d = f.stats().since(snap);
        // The shift rewrites all ~26 pages.
        assert!(
            d.writes >= 25,
            "front insert must rewrite the whole file, got {}",
            d.writes
        );
    }

    #[test]
    fn back_insert_is_cheap() {
        let mut f = NaiveSequentialFile::new(4);
        f.bulk_load((0..100u64).map(|k| (k, ())));
        let snap = f.stats().snapshot();
        f.insert(1000, ());
        let d = f.stats().since(snap);
        assert!(d.writes <= 1);
    }

    #[test]
    fn scans_are_sequential_and_cheap() {
        let mut f = NaiveSequentialFile::new(10);
        f.bulk_load((0..1000u64).map(|k| (k, ())));
        f.trace().set_enabled(true);
        let mut n = 0;
        f.scan_from(&100, 500, |_, _| n += 1);
        assert_eq!(n, 500);
        let trace = f.trace().take();
        // 500 records over 10-record pages ⇒ ~50 sequential reads plus the
        // handful of binary-search probes.
        let reads = trace.iter().filter(|e| e.kind == AccessKind::Read).count();
        assert!(reads <= 62, "scan cost {reads} too high");
    }

    #[test]
    fn pages_used_tracks_len() {
        let mut f = NaiveSequentialFile::new(4);
        assert_eq!(f.pages_used(), 0);
        for k in 0..9u64 {
            f.insert(k, ());
        }
        assert_eq!(f.pages_used(), 3);
    }
}
