//! An ISAM-style sequential file with per-page overflow chains.
//!
//! The primary area is `M` pages whose key partition is fixed at
//! (re)organization time. An insertion whose page is full goes to the
//! page's overflow chain — extra pages allocated past the primary area, so
//! reaching them always costs a seek. This is exactly the classical
//! mitigation the paper's introduction dismisses: "overflow mechanisms
//! become especially unmanageable when a large surge of insertions is
//! attempted in a relatively small portion of the sequential file".
//! The `exp_overflow_burst` experiment reproduces that collapse: chain
//! length — and with it stream-retrieval cost — grows linearly with the
//! surge, while the dense file's worst-case bound is untouched.

use dsf_pagestore::{AccessKind, IoStats, Key, Record, TraceBuffer};

/// One primary page and its overflow chain.
#[derive(Debug)]
struct Bucket<K, V> {
    /// Sorted records of the primary page (≤ `page_capacity`).
    primary: Vec<Record<K, V>>,
    /// Overflow pages, in allocation order; each sorted, ≤ `page_capacity`.
    chain: Vec<OverflowPage<K, V>>,
}

#[derive(Debug)]
struct OverflowPage<K, V> {
    /// Global physical page number (≥ `M`).
    page_no: u64,
    recs: Vec<Record<K, V>>,
}

/// Health metrics of an overflow file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowStats {
    /// Records in primary pages.
    pub primary_records: u64,
    /// Records in overflow pages.
    pub overflow_records: u64,
    /// Overflow pages allocated.
    pub overflow_pages: u64,
    /// Longest chain (in pages) behind any primary page.
    pub longest_chain: u64,
}

/// A sequential file maintained with overflow chains (the classical
/// pre-1980s answer the paper replaces).
#[derive(Debug)]
pub struct OverflowFile<K, V> {
    buckets: Vec<Bucket<K, V>>,
    /// `boundaries[i]` = smallest key routed to bucket `i+1`; fixed at
    /// (re)organization time.
    boundaries: Vec<K>,
    page_capacity: usize,
    next_overflow_page: u64,
    len: u64,
    stats: IoStats,
    trace: TraceBuffer,
}

impl<K: Key, V> OverflowFile<K, V> {
    /// Creates an empty file with `primary_pages` primary pages of
    /// `page_capacity` records each.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(primary_pages: u32, page_capacity: usize) -> Self {
        assert!(primary_pages > 0, "primary_pages must be non-zero");
        assert!(page_capacity > 0, "page_capacity must be non-zero");
        OverflowFile {
            buckets: (0..primary_pages)
                .map(|_| Bucket {
                    primary: Vec::new(),
                    chain: Vec::new(),
                })
                .collect(),
            boundaries: Vec::new(),
            page_capacity,
            next_overflow_page: u64::from(primary_pages),
            len: 0,
            stats: IoStats::new(),
            trace: TraceBuffer::new(),
        }
    }

    /// Records stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page-access counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Optional physical access trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Chain-health metrics.
    pub fn overflow_stats(&self) -> OverflowStats {
        let mut s = OverflowStats {
            primary_records: 0,
            overflow_records: 0,
            overflow_pages: 0,
            longest_chain: 0,
        };
        for b in &self.buckets {
            s.primary_records += b.primary.len() as u64;
            s.overflow_pages += b.chain.len() as u64;
            s.longest_chain = s.longest_chain.max(b.chain.len() as u64);
            for p in &b.chain {
                s.overflow_records += p.recs.len() as u64;
            }
        }
        s
    }

    fn read_page(&self, page: u64) {
        self.stats.charge_reads(1);
        self.trace.record(page, AccessKind::Read);
    }

    fn write_page(&self, page: u64) {
        self.stats.charge_writes(1);
        self.trace.record(page, AccessKind::Write);
    }

    /// The bucket `key` is routed to (in-memory directory lookup — ISAM
    /// keeps the partition index resident, like the calibrator).
    fn bucket_of(&self, key: &K) -> usize {
        self.boundaries.partition_point(|b| b <= key)
    }

    /// Bulk-loads strictly-ascending records, fixing the key partition to
    /// an even spread at `fill` records per page (an offline build; free).
    ///
    /// # Panics
    ///
    /// Panics if the file is non-empty, the input is unsorted, or the input
    /// exceeds `primary_pages × fill` records.
    pub fn organize<I>(&mut self, items: I, fill: usize)
    where
        I: IntoIterator<Item = (K, V)>,
    {
        assert!(self.len == 0, "organize requires an empty file");
        let fill = fill.clamp(1, self.page_capacity);
        let mut recs: Vec<Record<K, V>> = Vec::new();
        for (k, v) in items {
            if let Some(prev) = recs.last() {
                assert!(prev.key < k, "organize input must be strictly ascending");
            }
            recs.push(Record::new(k, v));
        }
        assert!(
            recs.len() <= self.buckets.len() * fill,
            "organize input exceeds primary capacity at the requested fill"
        );
        self.len = recs.len() as u64;
        self.boundaries.clear();
        let mut rest = recs;
        for i in (0..self.buckets.len()).rev() {
            let start = (i * fill).min(rest.len());
            self.buckets[i].primary = rest.split_off(start);
            self.buckets[i].chain.clear();
        }
        // Boundaries: the first key of each non-empty bucket after the
        // first. Trailing empty buckets get no boundary, so keys beyond the
        // loaded range route to the last populated bucket — a sentinel-free
        // way to keep the partition total over a generic K.
        self.boundaries = Vec::with_capacity(self.buckets.len() - 1);
        for b in self.buckets.iter().skip(1) {
            if let Some(first) = b.primary.first() {
                self.boundaries.push(first.key);
            }
        }
    }

    /// Inserts a record. A full primary page pushes the record into the
    /// page's overflow chain (allocating a new chain page when needed).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let b = self.bucket_of(&key);
        let primary_page = b as u64;
        self.read_page(primary_page);
        let cap = self.page_capacity;
        match self.buckets[b]
            .primary
            .binary_search_by(|r| r.key.cmp(&key))
        {
            Ok(i) => {
                let old = std::mem::replace(&mut self.buckets[b].primary[i].value, value);
                self.write_page(primary_page);
                return Some(old);
            }
            Err(i) => {
                if self.buckets[b].primary.len() < cap {
                    self.buckets[b].primary.insert(i, Record::new(key, value));
                    self.write_page(primary_page);
                    self.len += 1;
                    return None;
                }
            }
        }
        // Overflow path: walk the chain looking for the key or space.
        for ci in 0..self.buckets[b].chain.len() {
            let page_no = self.buckets[b].chain[ci].page_no;
            self.read_page(page_no);
            match self.buckets[b].chain[ci]
                .recs
                .binary_search_by(|r| r.key.cmp(&key))
            {
                Ok(i) => {
                    let old =
                        std::mem::replace(&mut self.buckets[b].chain[ci].recs[i].value, value);
                    self.write_page(page_no);
                    return Some(old);
                }
                Err(i) => {
                    if self.buckets[b].chain[ci].recs.len() < cap {
                        self.buckets[b].chain[ci]
                            .recs
                            .insert(i, Record::new(key, value));
                        self.write_page(page_no);
                        self.len += 1;
                        return None;
                    }
                }
            }
        }
        // Allocate a fresh overflow page at the end of the file.
        let page_no = self.next_overflow_page;
        self.next_overflow_page += 1;
        self.buckets[b].chain.push(OverflowPage {
            page_no,
            recs: vec![Record::new(key, value)],
        });
        self.write_page(page_no);
        self.len += 1;
        None
    }

    /// Looks up a key, chasing the overflow chain if necessary.
    pub fn get(&self, key: &K) -> Option<&V> {
        let b = self.bucket_of(key);
        self.read_page(b as u64);
        let bucket = &self.buckets[b];
        if let Ok(i) = bucket.primary.binary_search_by(|r| r.key.cmp(key)) {
            return Some(&bucket.primary[i].value);
        }
        for page in &bucket.chain {
            self.read_page(page.page_no);
            if let Ok(i) = page.recs.binary_search_by(|r| r.key.cmp(key)) {
                return Some(&page.recs[i].value);
            }
        }
        None
    }

    /// Deletes a key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let b = self.bucket_of(key);
        self.read_page(b as u64);
        if let Ok(i) = self.buckets[b].primary.binary_search_by(|r| r.key.cmp(key)) {
            let rec = self.buckets[b].primary.remove(i);
            self.write_page(b as u64);
            self.len -= 1;
            return Some(rec.value);
        }
        for ci in 0..self.buckets[b].chain.len() {
            let page_no = self.buckets[b].chain[ci].page_no;
            self.read_page(page_no);
            if let Ok(i) = self.buckets[b].chain[ci]
                .recs
                .binary_search_by(|r| r.key.cmp(key))
            {
                let rec = self.buckets[b].chain[ci].recs.remove(i);
                self.write_page(page_no);
                self.len -= 1;
                return Some(rec.value);
            }
        }
        None
    }

    /// Streams up to `limit` records with keys ≥ `start` in key order.
    ///
    /// Every bucket in the range must merge its primary page with its
    /// entire overflow chain — each chain page a seek-distant read. This is
    /// where surged files fall apart.
    pub fn scan_from<F: FnMut(&K, &V)>(&self, start: &K, limit: usize, mut f: F) {
        let mut emitted = 0usize;
        let mut b = self.bucket_of(start);
        while emitted < limit && b < self.buckets.len() {
            let bucket = &self.buckets[b];
            if bucket.primary.is_empty() && bucket.chain.is_empty() {
                // Emptiness is partition-directory metadata (free).
                b += 1;
                continue;
            }
            self.read_page(b as u64);
            // Merge primary + chains in key order.
            let mut merged: Vec<&Record<K, V>> = bucket.primary.iter().collect();
            for page in &bucket.chain {
                self.read_page(page.page_no);
                merged.extend(page.recs.iter());
            }
            merged.sort_by_key(|a| a.key);
            for rec in merged {
                if rec.key < *start {
                    continue;
                }
                f(&rec.key, &rec.value);
                emitted += 1;
                if emitted >= limit {
                    break;
                }
            }
            b += 1;
        }
    }

    /// Rebuilds the file: merges every chain back into an even primary
    /// partition. `O(file)` page accesses, like any offline reorganization.
    pub fn reorganize(&mut self, fill: usize) {
        let mut all: Vec<Record<K, V>> = Vec::with_capacity(self.len as usize);
        for (i, bucket) in self.buckets.iter_mut().enumerate() {
            self.stats.charge_reads(1);
            self.trace.record(i as u64, AccessKind::Read);
            all.append(&mut bucket.primary);
            for mut page in bucket.chain.drain(..) {
                self.stats.charge_reads(1);
                self.trace.record(page.page_no, AccessKind::Read);
                all.append(&mut page.recs);
            }
        }
        all.sort_by_key(|a| a.key);
        let n_pages = self.buckets.len() as u64;
        self.stats.charge_writes(n_pages);
        self.len = 0;
        self.next_overflow_page = n_pages;
        let items: Vec<(K, V)> = all.into_iter().map(|r| (r.key, r.value)).collect();
        self.organize(items, fill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded(pages: u32, cap: usize, n: u64) -> OverflowFile<u64, u64> {
        let mut f = OverflowFile::new(pages, cap);
        f.organize((0..n).map(|k| (k * 100, k)), cap / 2);
        f
    }

    #[test]
    fn organize_then_lookup() {
        let f = loaded(10, 8, 40);
        assert_eq!(f.len(), 40);
        assert_eq!(f.get(&300), Some(&3));
        assert_eq!(f.get(&301), None);
        assert_eq!(f.overflow_stats().overflow_pages, 0);
    }

    #[test]
    fn inserts_spill_to_overflow_chains() {
        let mut f = loaded(4, 4, 8); // fill 2 per page
                                     // Hammer one key region: bucket of key ~150 fills, then chains.
        for i in 0..20u64 {
            f.insert(150 + i, i);
        }
        assert_eq!(f.len(), 28);
        let s = f.overflow_stats();
        assert!(
            s.overflow_pages >= 4,
            "surge must build chains, got {:?}",
            s
        );
        assert!(s.longest_chain >= 4);
        // Everything is still findable.
        for i in 0..20u64 {
            assert_eq!(f.get(&(150 + i)), Some(&i));
        }
    }

    #[test]
    fn interleaved_chains_destroy_scan_locality() {
        use dsf_pagestore::disk::DiskModel;
        // Strict adjacency: chain pages in a shared overflow area are not
        // physically contiguous with one another, so no read-through.
        let model = DiskModel {
            read_through_pages: 1,
            ..DiskModel::ibm3380_class()
        };

        let mut f = loaded(8, 8, 32);
        f.trace().set_enabled(true);
        let mut n = 0;
        f.scan_from(&0, 32, |_, _| n += 1);
        assert_eq!(n, 32);
        let clean = model.analyze(&f.trace().take());
        assert_eq!(clean.seeks, 1, "a clean primary scan is one sequential run");

        // Surge across four neighbouring buckets so their overflow chains
        // interleave in allocation order — the workload class the paper's
        // introduction calls unmanageable for overflow heuristics.
        f.trace().set_enabled(false);
        for i in 0..80u64 {
            let bucket = i % 4; // buckets cover 400-wide key stripes
            f.insert(bucket * 400 + 2 + i, 0);
        }
        f.trace().set_enabled(true);
        let mut n = 0;
        f.scan_from(&0, 112, |_, _| n += 1);
        assert_eq!(n, 112);
        let surged = model.analyze(&f.trace().take());
        assert!(
            surged.seeks >= 10 * clean.seeks,
            "interleaved chains must shred locality: {} → {} seeks",
            clean.seeks,
            surged.seeks
        );
        // Per-record disk time degrades even though per-record page counts
        // barely move — the cost is in the arm movement.
        let clean_ms = clean.estimated_ms / 32.0;
        let surged_ms = surged.estimated_ms / 112.0;
        assert!(
            surged_ms > 2.0 * clean_ms,
            "{clean_ms:.2} → {surged_ms:.2} ms/record"
        );
    }

    #[test]
    fn remove_searches_chains_too() {
        let mut f = loaded(2, 4, 4);
        for i in 0..10u64 {
            f.insert(10 + i, i);
        }
        assert_eq!(f.remove(&15), Some(5));
        assert_eq!(f.remove(&15), None);
        assert_eq!(f.get(&15), None);
    }

    #[test]
    fn reorganize_clears_chains() {
        let mut f = loaded(8, 8, 16);
        for i in 0..40u64 {
            f.insert(1 + i, 0);
        }
        assert!(f.overflow_stats().overflow_pages > 0);
        let len = f.len();
        f.reorganize(7);
        assert_eq!(f.len(), len);
        assert_eq!(f.overflow_stats().overflow_pages, 0);
        // Order is restored: a scan returns ascending keys.
        let mut keys = Vec::new();
        f.scan_from(&0, 1000, |k, _| keys.push(*k));
        assert_eq!(keys.len() as u64, len);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn replace_value_in_primary_and_chain() {
        let mut f = loaded(2, 4, 4);
        assert_eq!(f.insert(100, 99), Some(1)); // primary replace
        for i in 0..8u64 {
            f.insert(20 + i, i);
        }
        // key 27 is in a chain page now; replace it.
        let before_len = f.len();
        assert_eq!(f.insert(27, 77), Some(7));
        assert_eq!(f.len(), before_len);
        assert_eq!(f.get(&27), Some(&77));
    }
}
