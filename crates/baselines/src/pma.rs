//! An amortized two-threshold Packed Memory Array.
//!
//! The modern descendant of this paper's CONTROL 1 (via Itai-Konheim-Rodeh's
//! sparse table and Bender et al.'s PMA): segments of a gapped array with
//! *height-interpolated* density thresholds. A window of `2^h` aligned
//! segments at height `h` must keep its density within `[ρ_h, τ_h]`, where
//! `τ` tightens and `ρ` loosens towards the leaves:
//!
//! ```text
//! τ_h = τ_leaf + (τ_root − τ_leaf)·h/H      (τ_root < τ_leaf)
//! ρ_h = ρ_leaf + (ρ_root − ρ_leaf)·h/H      (ρ_leaf < ρ_root)
//! ```
//!
//! An update that pushes its segment outside the band rebalances the
//! smallest enclosing window that is back inside the band — a one-shot even
//! redistribution, `O(window)` page accesses. Amortized this is
//! `O(log²N/B)`-ish; worst case it is `O(M)`, the exact spike CONTROL 2
//! de-amortizes. The `exp_amortized_vs_worstcase` experiment plots both.

use dsf_pagestore::{AccessKind, IoStats, Key, Record, TraceBuffer};
use std::collections::BTreeMap;

/// Sizing and thresholds of an [`AmortizedPma`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmaConfig {
    /// Number of segments; each segment is one physical page.
    pub segments: u32,
    /// Cells (record slots) per segment — the page capacity `D`.
    pub segment_capacity: u32,
    /// Upper density bound of a single segment (`τ_0`).
    pub tau_leaf: f64,
    /// Upper density bound of the whole array (`τ_H`); also fixes the
    /// capacity `N = ⌊τ_H · segments · segment_capacity⌋`.
    pub tau_root: f64,
    /// Lower density bound of a single segment (`ρ_0`).
    pub rho_leaf: f64,
    /// Lower density bound of the whole array (`ρ_H`).
    pub rho_root: f64,
}

impl PmaConfig {
    /// A conventional parameterization for a given page geometry, chosen so
    /// the capacity matches a `(d,D)`-dense file of the same footprint
    /// (`τ_root = d/D`).
    pub fn for_pages(segments: u32, page_capacity: u32, min_density: u32) -> Self {
        PmaConfig {
            segments,
            segment_capacity: page_capacity,
            tau_leaf: 0.92,
            tau_root: f64::from(min_density) / f64::from(page_capacity),
            rho_leaf: 0.05,
            rho_root: 0.15,
        }
    }
}

/// Errors raised by [`AmortizedPma`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PmaError {
    /// A sizing/threshold parameter is out of range.
    InvalidConfig(&'static str),
    /// The array is at its fixed capacity.
    Full {
        /// The capacity `N = ⌊τ_root · cells⌋`.
        capacity: u64,
    },
}

impl std::fmt::Display for PmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmaError::InvalidConfig(what) => write!(f, "invalid PMA config: {what}"),
            PmaError::Full { capacity } => write!(f, "PMA is at its capacity of {capacity}"),
        }
    }
}

impl std::error::Error for PmaError {}

/// An amortized packed memory array over accounted pages.
#[derive(Debug)]
pub struct AmortizedPma<K, V> {
    cfg: PmaConfig,
    height: u32,
    segs: Vec<Vec<Record<K, V>>>,
    /// In-memory routing index: segment minimum key → segment (uncounted,
    /// like the paper's calibrator).
    index: BTreeMap<K, u32>,
    len: u64,
    /// One-shot rebalances performed.
    rebalances: u64,
    /// Total segments rewritten by rebalances.
    rebalanced_segments: u64,
    stats: IoStats,
    trace: TraceBuffer,
}

impl<K: Key, V> AmortizedPma<K, V> {
    /// Creates an empty array.
    pub fn new(cfg: PmaConfig) -> Result<Self, PmaError> {
        if cfg.segments == 0 {
            return Err(PmaError::InvalidConfig("segments must be non-zero"));
        }
        if cfg.segment_capacity == 0 {
            return Err(PmaError::InvalidConfig("segment_capacity must be non-zero"));
        }
        if !(cfg.tau_root > 0.0 && cfg.tau_root <= cfg.tau_leaf && cfg.tau_leaf <= 1.0) {
            return Err(PmaError::InvalidConfig("need 0 < τ_root ≤ τ_leaf ≤ 1"));
        }
        if !(cfg.rho_leaf >= 0.0 && cfg.rho_leaf <= cfg.rho_root && cfg.rho_root < cfg.tau_root) {
            return Err(PmaError::InvalidConfig("need 0 ≤ ρ_leaf ≤ ρ_root < τ_root"));
        }
        let height = if cfg.segments <= 1 {
            0
        } else {
            32 - (cfg.segments - 1).leading_zeros()
        };
        Ok(AmortizedPma {
            cfg,
            height,
            segs: (0..cfg.segments).map(|_| Vec::new()).collect(),
            index: BTreeMap::new(),
            len: 0,
            rebalances: 0,
            rebalanced_segments: 0,
            stats: IoStats::new(),
            trace: TraceBuffer::new(),
        })
    }

    /// Records stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity `N = ⌊τ_root · segments · segment_capacity⌋`.
    pub fn capacity(&self) -> u64 {
        (self.cfg.tau_root * f64::from(self.cfg.segments) * f64::from(self.cfg.segment_capacity))
            .floor() as u64
    }

    /// Page-access counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Optional physical access trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// `(rebalances, total segments rewritten)`.
    pub fn rebalance_stats(&self) -> (u64, u64) {
        (self.rebalances, self.rebalanced_segments)
    }

    fn read_seg(&self, s: u32) {
        self.stats.charge_reads(1);
        self.trace.record(u64::from(s), AccessKind::Read);
    }

    fn write_seg(&self, s: u32) {
        self.stats.charge_writes(1);
        self.trace.record(u64::from(s), AccessKind::Write);
    }

    /// Routes `key` to the segment holding its predecessor (or the first
    /// populated segment, or the middle of an empty array).
    fn route(&self, key: &K) -> u32 {
        if let Some((_, &s)) = self.index.range(..=*key).next_back() {
            return s;
        }
        if let Some((_, &s)) = self.index.iter().next() {
            return s;
        }
        self.cfg.segments / 2
    }

    fn refresh_index(&mut self, s: u32, old_min: Option<K>) {
        let new_min = self.segs[s as usize].first().map(|r| r.key);
        if old_min == new_min {
            return;
        }
        if let Some(k) = old_min {
            if self.index.get(&k) == Some(&s) {
                self.index.remove(&k);
            }
        }
        if let Some(k) = new_min {
            self.index.insert(k, s);
        }
    }

    /// The aligned window of `2^h` segments containing `s`, clamped to the
    /// array.
    fn window(&self, s: u32, h: u32) -> (u32, u32) {
        let size = 1u64 << h.min(31);
        let start = (u64::from(s) / size) * size;
        let end = (start + size).min(u64::from(self.cfg.segments));
        (start as u32, end as u32)
    }

    fn window_count(&self, lo: u32, hi: u32) -> u64 {
        (lo..hi).map(|s| self.segs[s as usize].len() as u64).sum()
    }

    fn tau(&self, h: u32) -> f64 {
        if self.height == 0 {
            return self.cfg.tau_root;
        }
        let t = f64::from(h) / f64::from(self.height);
        self.cfg.tau_leaf + (self.cfg.tau_root - self.cfg.tau_leaf) * t
    }

    fn rho(&self, h: u32) -> f64 {
        if self.height == 0 {
            return self.cfg.rho_root;
        }
        let t = f64::from(h) / f64::from(self.height);
        self.cfg.rho_leaf + (self.cfg.rho_root - self.cfg.rho_leaf) * t
    }

    fn density(&self, lo: u32, hi: u32) -> f64 {
        let cells = u64::from(hi - lo) * u64::from(self.cfg.segment_capacity);
        self.window_count(lo, hi) as f64 / cells as f64
    }

    /// Evenly redistributes the records of segments `[lo, hi)`, charging a
    /// read and a write per segment.
    fn rebalance(&mut self, lo: u32, hi: u32) {
        self.rebalances += 1;
        self.rebalanced_segments += u64::from(hi - lo);
        let mut all: Vec<Record<K, V>> = Vec::new();
        for s in lo..hi {
            let old_min = self.segs[s as usize].first().map(|r| r.key);
            if !self.segs[s as usize].is_empty() {
                self.read_seg(s);
            }
            let mut recs = std::mem::take(&mut self.segs[s as usize]);
            all.append(&mut recs);
            if let Some(k) = old_min {
                if self.index.get(&k) == Some(&s) {
                    self.index.remove(&k);
                }
            }
        }
        let n = all.len() as u64;
        let w = u64::from(hi - lo);
        let mut rest = all;
        for i in (0..w).rev() {
            let start = (n * i / w) as usize;
            let chunk = rest.split_off(start);
            let s = lo + i as u32;
            if !chunk.is_empty() {
                self.write_seg(s);
                self.index.insert(chunk[0].key, s);
            }
            self.segs[s as usize] = chunk;
        }
    }

    /// Inserts a record, returning the previous value on key collision.
    pub fn insert(&mut self, key: K, value: V) -> Result<Option<V>, PmaError> {
        let s = self.route(&key);
        self.read_seg(s);
        let capacity = self.capacity();
        match self.segs[s as usize].binary_search_by(|r| r.key.cmp(&key)) {
            Ok(i) => {
                let old = std::mem::replace(&mut self.segs[s as usize][i].value, value);
                self.write_seg(s);
                return Ok(Some(old));
            }
            Err(i) => {
                if self.len >= capacity {
                    return Err(PmaError::Full { capacity });
                }
                let old_min = self.segs[s as usize].first().map(|r| r.key);
                self.segs[s as usize].insert(i, Record::new(key, value));
                self.write_seg(s);
                self.len += 1;
                self.refresh_index(s, old_min);
            }
        }
        // Rebalance the smallest enclosing window back inside its band.
        let mut h = 0;
        loop {
            let (lo, hi) = self.window(s, h);
            if self.density(lo, hi) <= self.tau(h) {
                if h > 0 {
                    self.rebalance(lo, hi);
                }
                break;
            }
            debug_assert!(
                h <= self.height,
                "capacity gate keeps the root within τ_root"
            );
            h += 1;
        }
        Ok(None)
    }

    /// Deletes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if self.len == 0 {
            return None;
        }
        let s = self.route(key);
        self.read_seg(s);
        let seg = &mut self.segs[s as usize];
        let i = seg.binary_search_by(|r| r.key.cmp(key)).ok()?;
        let old_min = seg.first().map(|r| r.key);
        let rec = seg.remove(i);
        self.write_seg(s);
        self.len -= 1;
        self.refresh_index(s, old_min);
        // Rebalance the smallest enclosing window that is still dense
        // enough; a root below ρ_root is left alone (fixed footprint).
        let mut h = 0;
        loop {
            let (lo, hi) = self.window(s, h);
            if self.density(lo, hi) >= self.rho(h) {
                if h > 0 {
                    self.rebalance(lo, hi);
                }
                break;
            }
            if h >= self.height {
                break;
            }
            h += 1;
        }
        Some(rec.value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        if self.len == 0 {
            return None;
        }
        let s = self.route(key);
        self.read_seg(s);
        let seg = &self.segs[s as usize];
        seg.binary_search_by(|r| r.key.cmp(key))
            .ok()
            .map(|i| &seg[i].value)
    }

    /// Bulk-loads strictly-ascending records at even density (offline
    /// build; free).
    ///
    /// # Panics
    ///
    /// Panics on a non-empty array, unsorted input, or overflow.
    pub fn bulk_load<I>(&mut self, items: I)
    where
        I: IntoIterator<Item = (K, V)>,
    {
        assert!(self.len == 0, "bulk_load requires an empty array");
        let mut recs: Vec<Record<K, V>> = Vec::new();
        for (k, v) in items {
            if let Some(prev) = recs.last() {
                assert!(prev.key < k, "bulk_load input must be strictly ascending");
            }
            recs.push(Record::new(k, v));
        }
        let n = recs.len() as u64;
        assert!(n <= self.capacity(), "bulk_load exceeds capacity");
        self.len = n;
        let w = u64::from(self.cfg.segments);
        let mut rest = recs;
        for i in (0..w).rev() {
            let start = (n * i / w) as usize;
            let chunk = rest.split_off(start);
            let s = i as u32;
            if let Some(first) = chunk.first() {
                self.index.insert(first.key, s);
            }
            self.segs[s as usize] = chunk;
        }
    }

    /// Streams up to `limit` records with keys ≥ `start` in key order,
    /// charging one read per populated segment visited.
    pub fn scan_from<F: FnMut(&K, &V)>(&self, start: &K, limit: usize, mut f: F) {
        let mut emitted = 0usize;
        let first = self.route(start);
        for s in first..self.cfg.segments {
            if emitted >= limit {
                return;
            }
            let seg = &self.segs[s as usize];
            if seg.is_empty() {
                continue; // emptiness is index metadata
            }
            self.read_seg(s);
            for rec in seg {
                if rec.key < *start {
                    continue;
                }
                f(&rec.key, &rec.value);
                emitted += 1;
                if emitted >= limit {
                    return;
                }
            }
        }
    }

    /// Structural self-check (tests): global order, per-segment capacity,
    /// index consistency, len consistency.
    pub fn check_structure(&self) -> Result<(), String> {
        let mut prev: Option<K> = None;
        let mut total = 0u64;
        for (s, seg) in self.segs.iter().enumerate() {
            if seg.len() > self.cfg.segment_capacity as usize {
                return Err(format!("segment {s} over capacity: {}", seg.len()));
            }
            for r in seg {
                if let Some(p) = prev {
                    if p >= r.key {
                        return Err(format!("order violated at segment {s}"));
                    }
                }
                prev = Some(r.key);
                total += 1;
            }
            if let Some(first) = seg.first() {
                if self.index.get(&first.key) != Some(&(s as u32)) {
                    return Err(format!("index missing/incorrect for segment {s}"));
                }
            }
        }
        if total != self.len {
            return Err(format!("len {} but segments hold {total}", self.len));
        }
        if self.index.len() != self.segs.iter().filter(|s| !s.is_empty()).count() {
            return Err("index size mismatch".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pma(segments: u32, cap: u32, d: u32) -> AmortizedPma<u64, u64> {
        AmortizedPma::new(PmaConfig::for_pages(segments, cap, d)).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = PmaConfig::for_pages(8, 16, 8);
        c.tau_root = 1.5;
        assert!(AmortizedPma::<u64, u64>::new(c).is_err());
        let mut c = PmaConfig::for_pages(8, 16, 8);
        c.rho_root = 0.9;
        assert!(AmortizedPma::<u64, u64>::new(c).is_err());
        assert!(AmortizedPma::<u64, u64>::new(PmaConfig::for_pages(0, 16, 8)).is_err());
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut p = pma(16, 16, 8);
        for k in 0..100u64 {
            assert_eq!(p.insert(k * 7, k).unwrap(), None);
            p.check_structure().unwrap();
        }
        assert_eq!(p.len(), 100);
        for k in 0..100u64 {
            assert_eq!(p.get(&(k * 7)), Some(&k));
        }
        assert_eq!(p.insert(7, 999).unwrap(), Some(1));
        for k in 0..100u64 {
            assert_eq!(p.remove(&(k * 7)), Some(if k == 1 { 999 } else { k }));
            p.check_structure().unwrap();
        }
        assert!(p.is_empty());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut p = pma(4, 8, 4); // capacity = 0.5·32 = 16
        assert_eq!(p.capacity(), 16);
        for k in 0..16u64 {
            p.insert(k, k).unwrap();
        }
        assert_eq!(p.insert(99, 0), Err(PmaError::Full { capacity: 16 }));
        // Replacement is still allowed at capacity.
        assert_eq!(p.insert(5, 55).unwrap(), Some(5));
    }

    #[test]
    fn hammering_triggers_window_rebalances() {
        let mut p = pma(64, 16, 8);
        p.bulk_load((0..400u64).map(|k| (k * 1_000_000, k)));
        p.check_structure().unwrap();
        for i in 0..100u64 {
            p.insert(500 + i, 0).unwrap();
            p.check_structure().unwrap();
        }
        let (rebalances, segs) = p.rebalance_stats();
        assert!(rebalances > 0);
        assert!(segs >= rebalances);
    }

    #[test]
    fn amortized_profile_has_spikes() {
        let mut p = pma(128, 16, 8); // capacity 1024
        p.bulk_load((0..800u64).map(|k| (k << 20, k)));
        let mut max_cost = 0u64;
        let mut total = 0u64;
        let mut n = 0u64;
        for i in 0..200u64 {
            let snap = p.stats().snapshot();
            p.insert((1 << 19) + i, 0).unwrap();
            let c = p.stats().since(snap).accesses();
            max_cost = max_cost.max(c);
            total += c;
            n += 1;
        }
        let mean = total as f64 / n as f64;
        assert!(
            max_cost as f64 > 3.0 * mean,
            "PMA spikes: max {max_cost} mean {mean:.1}"
        );
    }

    #[test]
    fn scan_is_ordered_and_complete() {
        let mut p = pma(32, 8, 4);
        p.bulk_load((0..100u64).map(|k| (k * 3, k)));
        let mut keys = Vec::new();
        p.scan_from(&30, 50, |k, _| keys.push(*k));
        assert_eq!(keys.len(), 50);
        assert_eq!(keys[0], 30);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deletes_rebalance_sparse_windows() {
        let mut p = pma(32, 16, 8);
        let cap = p.capacity();
        for k in 0..cap {
            p.insert(k, k).unwrap();
        }
        // Drain one half completely; sparse windows must rebalance without
        // breaking structure.
        for k in 0..cap / 2 {
            p.remove(&k).unwrap();
            p.check_structure().unwrap();
        }
        assert_eq!(p.len(), cap / 2);
    }

    #[test]
    fn empty_array_operations() {
        let mut p = pma(8, 8, 4);
        assert_eq!(p.get(&5), None);
        assert_eq!(p.remove(&5), None);
        let mut n = 0;
        p.scan_from(&0, 10, |_, _| n += 1);
        assert_eq!(n, 0);
        p.insert(5, 5).unwrap();
        assert_eq!(p.get(&5), Some(&5));
    }
}
