//! Structured per-command spans in a bounded ring buffer.
//!
//! Metrics aggregate; spans *attribute*. A [`Span`] records what one
//! structural command actually did — which kind, where it landed, how many
//! pages it touched, how many SHIFT steps ran, how many WAL frames it
//! appended — so a worst-case outlier seen in the histogram can be chased
//! back to the command that caused it. The ring holds the most recent
//! `capacity` spans in bounded memory; older spans are overwritten and
//! counted as dropped rather than growing without limit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// One completed command, as seen by the layer that ran it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What ran: `"insert"`, `"delete"`, `"checkpoint"`, …
    pub kind: &'static str,
    /// Where it landed — slot for `dsf-core`, shard for `dsf-concurrent`.
    pub target: u64,
    /// Page accesses charged to the command.
    pub pages: u64,
    /// CONTROL 2 SHIFT invocations the command ran.
    pub shift_steps: u64,
    /// WAL frames the command appended (0 for non-durable files).
    pub wal_frames: u64,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

#[derive(Debug, Default)]
struct Inner {
    buf: VecDeque<Span>,
    dropped: u64,
    total: u64,
}

/// A bounded, drop-counting ring of [`Span`]s.
///
/// `push` is a single-branch no-op while the shared enable flag is off;
/// when on it takes a short mutex (spans are per-*command*, which is orders
/// of magnitude rarer than per-page events, so a lock is fine here where it
/// would not be in the [`crate::Registry`] hot path).
#[derive(Debug)]
pub struct SpanRing {
    on: Arc<AtomicBool>,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SpanRing {
    /// A ring with its own private switch (enabled immediately).
    pub fn new(capacity: usize) -> Self {
        SpanRing::with_flag(capacity, Arc::new(AtomicBool::new(true)))
    }

    /// A ring tied to an external enable flag (see
    /// [`crate::Registry::enabled_flag`]).
    pub fn with_flag(capacity: usize, on: Arc<AtomicBool>) -> Self {
        assert!(capacity > 0, "span ring capacity must be non-zero");
        SpanRing {
            on,
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Records a span, evicting (and counting) the oldest when full.
    #[inline]
    pub fn push(&self, span: Span) {
        if !self.on.load(Relaxed) {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(span);
        inner.total += 1;
    }

    /// Mutates the most recent span in place (no-op while disabled or when
    /// the ring is empty). Lets an outer layer annotate the span an inner
    /// layer pushed — `dsf-durable` stamps `wal_frames` onto the span
    /// `dsf-core` recorded for the same command. Best-effort under
    /// concurrency: another thread's span may have landed in between.
    ///
    /// With span *sampling* the caller usually cannot know whether the
    /// inner layer pushed a span at all; take a [`push_token`] before the
    /// inner call and use [`amend_pushed_since`] instead, or the
    /// annotation lands on some *older* command's span.
    ///
    /// [`push_token`]: SpanRing::push_token
    /// [`amend_pushed_since`]: SpanRing::amend_pushed_since
    pub fn amend_last(&self, f: impl FnOnce(&mut Span)) {
        if !self.on.load(Relaxed) {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(last) = inner.buf.back_mut() {
            f(last);
        }
    }

    /// An opaque token for [`amend_pushed_since`](SpanRing::amend_pushed_since):
    /// the number of spans ever pushed at the time of the call. While the
    /// ring is disabled it returns `u64::MAX`, which no later total can
    /// exceed, so the paired amend stays a no-op.
    pub fn push_token(&self) -> u64 {
        if !self.on.load(Relaxed) {
            return u64::MAX;
        }
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// Mutates the most recent span only if at least one span was pushed
    /// after `token` (from [`push_token`](SpanRing::push_token)) was taken.
    /// This is the sampling-safe annotation hook: a command whose inner
    /// layer skipped the (1-in-N sampled) span ring must not stamp its
    /// `wal_frames` onto an older command's span. Best-effort under
    /// concurrency: another thread's span may be the one amended.
    pub fn amend_pushed_since(&self, token: u64, f: impl FnOnce(&mut Span)) {
        if !self.on.load(Relaxed) {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.total > token {
            if let Some(last) = inner.buf.back_mut() {
                f(last);
            }
        }
    }

    /// The retained spans (oldest first) and the number dropped so far.
    pub fn snapshot(&self) -> (Vec<Span>, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (inner.buf.iter().cloned().collect(), inner.dropped)
    }

    /// Spans ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// Spans evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Maximum retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empties the ring and zeroes the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = Inner::default();
    }

    /// Renders the newest `limit` spans as a JSON array (newest last).
    pub fn render_json(&self, limit: usize) -> String {
        let (spans, dropped) = self.snapshot();
        let skip = spans.len().saturating_sub(limit);
        let mut out = String::from("{\"dropped\":");
        out.push_str(&dropped.to_string());
        out.push_str(",\"spans\":[");
        for (i, s) in spans[skip..].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"target\":{},\"pages\":{},\"shift_steps\":{},\"wal_frames\":{},\"micros\":{}}}",
                s.kind, s.target, s.pages, s.shift_steps, s.wal_frames, s.micros
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(target: u64) -> Span {
        Span {
            kind: "insert",
            target,
            pages: target * 2,
            shift_steps: 1,
            wal_frames: 0,
            micros: 10,
        }
    }

    #[test]
    fn ring_bounds_memory_and_counts_drops() {
        let ring = SpanRing::new(3);
        for i in 0..5 {
            ring.push(span(i));
        }
        let (spans, dropped) = ring.snapshot();
        assert_eq!(dropped, 2);
        assert_eq!(ring.total(), 5);
        let targets: Vec<u64> = spans.iter().map(|s| s.target).collect();
        assert_eq!(targets, vec![2, 3, 4], "oldest spans evicted first");
    }

    #[test]
    fn disabled_flag_suppresses_pushes() {
        let flag = Arc::new(AtomicBool::new(false));
        let ring = SpanRing::with_flag(4, Arc::clone(&flag));
        ring.push(span(1));
        assert_eq!(ring.total(), 0);
        flag.store(true, Relaxed);
        ring.push(span(1));
        assert_eq!(ring.total(), 1);
    }

    #[test]
    fn amend_last_updates_only_the_newest_span() {
        let ring = SpanRing::new(4);
        ring.push(span(1));
        ring.push(span(2));
        ring.amend_last(|s| s.wal_frames = 7);
        let (spans, _) = ring.snapshot();
        assert_eq!(spans[0].wal_frames, 0);
        assert_eq!(spans[1].wal_frames, 7);
    }

    #[test]
    fn amend_pushed_since_skips_commands_that_pushed_no_span() {
        let ring = SpanRing::new(4);
        ring.push(span(1));

        // An unsampled command: no push between token and amend, so the
        // older span must stay untouched.
        let tok = ring.push_token();
        ring.amend_pushed_since(tok, |s| s.wal_frames += 1);
        assert_eq!(ring.snapshot().0[0].wal_frames, 0);

        // A sampled command: its own span takes the stamp.
        let tok = ring.push_token();
        ring.push(span(2));
        ring.amend_pushed_since(tok, |s| s.wal_frames += 1);
        let (spans, _) = ring.snapshot();
        assert_eq!(spans[0].wal_frames, 0);
        assert_eq!(spans[1].wal_frames, 1);
    }

    #[test]
    fn disabled_push_token_never_matches() {
        let flag = Arc::new(AtomicBool::new(false));
        let ring = SpanRing::with_flag(4, Arc::clone(&flag));
        let tok = ring.push_token();
        assert_eq!(tok, u64::MAX);
        flag.store(true, Relaxed);
        ring.push(span(1));
        ring.amend_pushed_since(tok, |s| s.wal_frames += 1);
        assert_eq!(ring.snapshot().0[0].wal_frames, 0);
    }

    #[test]
    fn json_rendering_is_bounded_and_well_formed() {
        let ring = SpanRing::new(8);
        for i in 0..4 {
            ring.push(span(i));
        }
        let json = ring.render_json(2);
        assert!(json.starts_with("{\"dropped\":0"));
        assert!(json.contains("\"target\":3"));
        assert!(!json.contains("\"target\":1"), "limit keeps newest only");
    }
}
