//! Exporters: Prometheus text exposition, JSON snapshots, a dependency-free
//! HTTP listener, and an exposition parser for smoke validation.
//!
//! The workspace is offline (no registry access), so the HTTP side is a
//! deliberately tiny `std::net` server: it understands exactly enough of
//! HTTP/1.1 to answer `GET /metrics` (Prometheus text format 0.0.4),
//! `GET /json` (a machine-diffable snapshot), and `GET /spans` (the recent
//! span ring). One request per connection, `Connection: close`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::{bucket_upper_bound, Instrument, Registry, HISTOGRAM_BUCKETS};

impl Registry {
    /// Renders the registry in Prometheus text exposition format 0.0.4.
    ///
    /// Families appear in registration order, each with one `# HELP` and
    /// `# TYPE` header; histograms render cumulative `_bucket` series plus
    /// `_sum`, `_count`, and a sibling `<name>_max` gauge (the paper's
    /// headline quantity is a *maximum*, which standard histograms lose).
    pub fn render_prometheus(&self) -> String {
        let entries = self.snapshot_entries();
        let mut out = String::new();
        let mut seen_families: Vec<String> = Vec::new();
        for e in &entries {
            if !seen_families.contains(&e.family) {
                seen_families.push(e.family.clone());
                if !e.help.is_empty() {
                    out.push_str(&format!("# HELP {} {}\n", e.family, e.help));
                }
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    e.family,
                    e.instrument.type_name()
                ));
            }
            let labelled = |extra: &str| -> String {
                match (e.labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{}}}", e.labels),
                    (false, false) => format!("{{{},{extra}}}", e.labels),
                }
            };
            match &e.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", e.family, labelled(""), c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{}{} {}\n", e.family, labelled(""), g.get()));
                }
                Instrument::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, n) in buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                        cumulative += n;
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.family,
                            labelled(&format!("le=\"{}\"", bucket_upper_bound(i))),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.family,
                        labelled("le=\"+Inf\""),
                        h.count()
                    ));
                    out.push_str(&format!("{}_sum{} {}\n", e.family, labelled(""), h.sum()));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.family,
                        labelled(""),
                        h.count()
                    ));
                    out.push_str(&format!("{}_max{} {}\n", e.family, labelled(""), h.max()));
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object the bench harness can diff
    /// across runs (`{"metrics":[{name, labels, type, ...}]}`).
    pub fn render_json(&self) -> String {
        let entries = self.snapshot_entries();
        let mut out = String::from("{\"metrics\":[");
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"type\":\"{}\",",
                e.family,
                e.labels.replace('\\', "\\\\").replace('"', "\\\""),
                e.instrument.type_name()
            ));
            match &e.instrument {
                Instrument::Counter(c) => out.push_str(&format!("\"value\":{}}}", c.get())),
                Instrument::Gauge(g) => {
                    let v = g.get();
                    if v.is_finite() {
                        out.push_str(&format!("\"value\":{v}}}"));
                    } else {
                        out.push_str("\"value\":null}");
                    }
                }
                Instrument::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let non_empty: Vec<String> = buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| format!("[{},{}]", bucket_upper_bound(i), n))
                        .collect();
                    out.push_str(&format!(
                        "\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}",
                        h.count(),
                        h.sum(),
                        h.max(),
                        non_empty.join(",")
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// A fixed-width human-readable table of every instrument — the body of
    /// `dsf top`.
    pub fn render_text(&self) -> String {
        let entries = self.snapshot_entries();
        let mut out = String::new();
        for e in &entries {
            let name = if e.labels.is_empty() {
                e.family.clone()
            } else {
                format!("{}{{{}}}", e.family, e.labels)
            };
            match &e.instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{name:<44} {:>14}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{name:<44} {:>14.3}\n", g.get()));
                }
                Instrument::Histogram(h) => {
                    let mean = if h.count() == 0 {
                        0.0
                    } else {
                        h.sum() as f64 / h.count() as f64
                    };
                    out.push_str(&format!(
                        "{name:<44} count={} mean={mean:.2} max={}\n",
                        h.count(),
                        h.max()
                    ));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// HTTP listener.
// ---------------------------------------------------------------------

/// Routes one request path against the **global** spine.
fn respond_to(path: &str) -> (u16, &'static str, String) {
    match path {
        "/metrics" => {
            crate::refresh_span_gauges();
            (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                crate::global().render_prometheus(),
            )
        }
        "/json" => {
            crate::refresh_span_gauges();
            (200, "application/json", crate::global().render_json())
        }
        "/spans" => (200, "application/json", crate::spans().render_json(256)),
        "/" => (
            200,
            "text/plain; charset=utf-8",
            "dsf-telemetry: /metrics (Prometheus), /json, /spans\n".to_string(),
        ),
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
    }
}

fn handle_connection(mut conn: TcpStream) -> io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    conn.set_write_timeout(Some(Duration::from_secs(5)))?;
    // Read the request head (bounded; body, if any, is ignored).
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        let n = conn.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let request_line = String::from_utf8_lossy(&head);
    let mut parts = request_line.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, content_type, body) = if method == "GET" {
        respond_to(path)
    } else {
        (405, "text/plain; charset=utf-8", "GET only\n".to_string())
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(response.as_bytes())
}

/// A bound metrics endpoint that has not started serving yet.
pub struct MetricsListener {
    listener: TcpListener,
    addr: SocketAddr,
}

impl MetricsListener {
    /// Binds to `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free one).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(MetricsListener { listener, addr })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until `n` requests have been answered, then returns — the
    /// CI smoke mode (`dsf serve-metrics --oneshot`).
    pub fn serve_requests(&self, n: usize) -> io::Result<()> {
        for _ in 0..n {
            let (conn, _) = self.listener.accept()?;
            // A single bad connection must not take the endpoint down.
            let _ = handle_connection(conn);
        }
        Ok(())
    }

    /// Serves until the process exits.
    pub fn serve_forever(&self) -> io::Result<()> {
        loop {
            self.serve_requests(1)?;
        }
    }

    /// Moves serving to a background thread; the returned handle stops the
    /// server when shut down or dropped.
    pub fn spawn(self) -> MetricsServer {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        self.listener
            .set_nonblocking(true)
            .expect("set_nonblocking on a fresh listener");
        let listener = self.listener;
        let handle = std::thread::spawn(move || {
            while !stop_thread.load(Relaxed) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        if conn.set_nonblocking(false).is_ok() {
                            let _ = handle_connection(conn);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });
        MetricsServer {
            addr: self.addr,
            stop,
            handle: Some(handle),
        }
    }
}

/// A running background metrics server over the global spine.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr` and serves the global spine in the background.
pub fn serve<A: ToSocketAddrs>(addr: A) -> io::Result<MetricsServer> {
    Ok(MetricsListener::bind(addr)?.spawn())
}

// ---------------------------------------------------------------------
// Exposition validation (CI smoke, tests).
// ---------------------------------------------------------------------

/// What [`parse_exposition`] found in a well-formed exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// Sample lines (non-comment).
    pub samples: usize,
    /// Distinct `# TYPE`d families.
    pub families: usize,
}

/// Validates Prometheus text exposition: non-empty, every sample line is
/// `name{labels} value`, no duplicate sample keys, every `# TYPE` names a
/// known metric type. Returns a summary or the first problem found.
pub fn parse_exposition(text: &str) -> Result<ExpositionSummary, String> {
    let mut samples = 0usize;
    let mut families = 0usize;
    let mut seen: Vec<&str> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families += 1;
            let mut parts = rest.split_whitespace();
            let _name = parts
                .next()
                .ok_or(format!("line {}: TYPE without name", lineno + 1))?;
            let ty = parts
                .next()
                .ok_or(format!("line {}: TYPE without type", lineno + 1))?;
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                return Err(format!("line {}: unknown metric type `{ty}`", lineno + 1));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample: `name` or `name{labels}`, whitespace, value.
        let (key, value) = match line.rfind(' ') {
            Some(i) => (&line[..i], &line[i + 1..]),
            None => return Err(format!("line {}: no value on sample line", lineno + 1)),
        };
        let key = key.trim_end();
        if key.is_empty() {
            return Err(format!("line {}: empty sample name", lineno + 1));
        }
        if value.parse::<f64>().is_err() && !["+Inf", "-Inf", "NaN"].contains(&value) {
            return Err(format!("line {}: unparseable value `{value}`", lineno + 1));
        }
        let name_end = key.find('{').unwrap_or(key.len());
        let name = &key[..name_end];
        if !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.is_empty()
        {
            return Err(format!("line {}: invalid metric name `{name}`", lineno + 1));
        }
        if name_end < key.len() && !key.ends_with('}') {
            return Err(format!("line {}: unterminated label set", lineno + 1));
        }
        if seen.contains(&key) {
            return Err(format!("line {}: duplicate sample `{key}`", lineno + 1));
        }
        seen.push(key);
        samples += 1;
    }
    if samples == 0 {
        return Err("exposition holds no samples".to_string());
    }
    Ok(ExpositionSummary { samples, families })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_rendering_round_trips_through_the_parser() {
        let reg = Registry::new();
        reg.enable();
        reg.counter("a_total", "counts a").add(3);
        reg.gauge_with("b", &[("shard", "2")], "level").set(1.5);
        let h = reg.histogram("c_pages", "pages");
        h.record(0);
        h.record(5);
        h.record(5000);
        let text = reg.render_prometheus();
        let summary = parse_exposition(&text).expect("well-formed exposition");
        // 1 counter + 1 gauge + (33 buckets + sum + count + max) = 38.
        assert_eq!(summary.samples, 38);
        assert_eq!(summary.families, 3);
        assert!(text.contains("a_total 3"));
        assert!(text.contains("b{shard=\"2\"} 1.5"));
        assert!(text.contains("c_pages_max 5000"));
        assert!(text.contains("c_pages_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("c_pages_count 3"));
    }

    #[test]
    fn histogram_buckets_render_cumulatively() {
        let reg = Registry::new();
        reg.enable();
        let h = reg.histogram("h", "");
        h.record(1); // bucket 1 (le=2)
        h.record(2); // bucket 1
        h.record(3); // bucket 2 (le=4)
        let text = reg.render_prometheus();
        assert!(text.contains("h_bucket{le=\"0\"} 0"));
        assert!(text.contains("h_bucket{le=\"2\"} 2"));
        assert!(text.contains("h_bucket{le=\"4\"} 3"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn parser_rejects_duplicates_and_garbage() {
        assert!(parse_exposition("").is_err());
        assert!(parse_exposition("x 1\nx 1\n").is_err());
        assert!(parse_exposition("x notanumber\n").is_err());
        assert!(parse_exposition("# TYPE x sideways\nx 1\n").is_err());
        assert!(parse_exposition("x{a=\"1\"} 2\nx{a=\"2\"} 2\n").is_ok());
    }

    #[test]
    fn json_snapshot_carries_every_instrument() {
        let reg = Registry::new();
        reg.enable();
        reg.counter("n_total", "").add(7);
        let h = reg.histogram("p", "");
        h.record(9);
        let json = reg.render_json();
        assert!(json.contains("\"name\":\"n_total\""));
        assert!(json.contains("\"value\":7"));
        assert!(json.contains("\"max\":9"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
