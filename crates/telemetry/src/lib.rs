//! # dsf-telemetry — the workspace's observability spine.
//!
//! The paper's headline claim is a *worst-case* per-command bound of
//! `O(log²M/(D−d))` page accesses. Trusting that claim in a long-running
//! system requires every command's cost to be measured, attributed, and
//! exportable while traffic is flowing — not just printed at the end of a
//! bench run. This crate is the single metrics spine the rest of the
//! workspace records into:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s. The hot path is one relaxed-atomic op per event, zero
//!   allocation, and a **single branch no-op while disabled** (the same
//!   discipline as `DenseFile::enable_step_trace`). Registration is the
//!   cold path and takes a lock; recording never does.
//! * [`SpanRing`] — a bounded ring buffer of structured per-command
//!   [`Span`]s (command kind, pages touched, shift steps run, WAL frames
//!   appended) with drop counting, so memory stays bounded under any load.
//! * [`export`] — Prometheus text exposition served over a tiny
//!   `std::net` HTTP listener (no dependencies; the workspace is offline),
//!   a JSON snapshot writer the bench harness diffs across runs, and an
//!   exposition parser the CI smoke test uses to validate the endpoint.
//!
//! ## The global spine
//!
//! The library crates (`dsf-pagestore`, `dsf-core`, `dsf-durable`,
//! `dsf-concurrent`) record into one process-wide registry reached through
//! [`global`], which starts **disabled**: until [`Registry::enable`] is
//! called, every instrument is an inert branch and the system measures at
//! its PR-2 baseline. Tools that want live metrics (`dsf serve-metrics`,
//! `dsf top`, `exp_telemetry`) enable it explicitly.
//!
//! ```
//! use dsf_telemetry as tel;
//!
//! let reg = tel::Registry::new();
//! let hist = reg.histogram("demo_page_accesses", "per-command page accesses");
//! hist.record(7); // disabled: no-op
//! reg.enable();
//! hist.record(7);
//! assert_eq!(hist.max(), 7);
//! assert!(reg.render_prometheus().contains("demo_page_accesses_count"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod registry;
mod span;

pub use export::{parse_exposition, serve, ExpositionSummary, MetricsListener, MetricsServer};
pub use registry::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use span::{Span, SpanRing};

use std::sync::OnceLock;

/// Default capacity of the [`spans`] ring (per-command spans retained).
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

fn cell() -> &'static (Registry, SpanRing) {
    static CELL: OnceLock<(Registry, SpanRing)> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = Registry::new();
        let ring = SpanRing::with_flag(DEFAULT_SPAN_CAPACITY, reg.enabled_flag());
        (reg, ring)
    })
}

/// The process-wide registry every dsf crate records into. Starts disabled.
pub fn global() -> &'static Registry {
    &cell().0
}

/// The process-wide span ring. Shares the on/off switch of [`global`], so
/// enabling the registry also starts span capture.
pub fn spans() -> &'static SpanRing {
    &cell().1
}

/// Whether the global spine is currently recording — the one branch every
/// disabled-path instrument takes.
#[inline]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Publishes the global span ring's own health as gauges
/// (`dsf_span_ring_dropped`, `dsf_span_ring_capacity`), so a scrape can
/// tell how lossy the retained spans are without a side channel.
///
/// Exporters call this at scrape/refresh time (like the `O(M)` file
/// gauges); it is not a per-push hook. No-op while the spine is disabled.
pub fn refresh_span_gauges() {
    if !enabled() {
        return;
    }
    let r = global();
    r.gauge(
        "dsf_span_ring_dropped",
        "spans evicted from the global span ring",
    )
    .set(spans().dropped() as f64);
    r.gauge(
        "dsf_span_ring_capacity",
        "span slots in the global span ring",
    )
    .set(spans().capacity() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_spine_shares_one_switch() {
        // Note: the global registry is process-wide; this test only toggles
        // it briefly and restores the disabled state.
        assert!(!enabled());
        global().enable();
        assert!(enabled());
        spans().push(Span {
            kind: "test",
            target: 1,
            pages: 2,
            shift_steps: 0,
            wal_frames: 0,
            micros: 5,
        });
        let (recorded, dropped) = spans().snapshot();
        assert_eq!(dropped, 0);
        assert!(recorded.iter().any(|s| s.kind == "test"));
        global().disable();
        spans().clear();
        assert!(!enabled());
    }
}
