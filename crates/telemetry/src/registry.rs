//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms behind relaxed atomics.
//!
//! Instruments are registered once (cold path, takes a lock) and handed
//! back as cheap [`Arc`] handles; recording through a handle is lock-free —
//! one relaxed atomic RMW per event — and a single-branch no-op while the
//! registry is disabled, so the cost of *having* telemetry compiled in is
//! one predictable branch per instrumented event.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 counts zero-valued observations,
/// bucket `i ∈ 1..32` counts values in `(2^(i−1), 2^i]`, and bucket 32 is
/// the catch-all for everything above `2^31` — the same power-of-two
/// bucketing as `dsf_core::AccessHistogram`, so the two reconcile exactly
/// over the same event stream.
pub const HISTOGRAM_BUCKETS: usize = 33;

/// Bucket index for an observed value (shared bucketing contract).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - (value - 1).leading_zeros().min(63) as usize).min(32)
    }
}

/// Inclusive upper bound of bucket `i` (`0` for bucket 0, `2^i` otherwise;
/// bucket 32 is unbounded and rendered as `+Inf`).
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i.min(63)
    }
}

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    on: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (no-op while the registry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on.load(Relaxed) {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Relaxed);
    }
}

/// An instantaneous value (stored as `f64` bits, as Prometheus gauges are
/// floating-point anyway).
#[derive(Debug)]
pub struct Gauge {
    on: Arc<AtomicBool>,
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge (no-op while the registry is disabled).
    #[inline]
    pub fn set(&self, v: f64) {
        if self.on.load(Relaxed) {
            self.bits.store(v.to_bits(), Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0f64.to_bits(), Relaxed);
    }
}

/// A fixed-bucket power-of-two histogram with exact `count`, `sum`, and
/// `max` side counters.
#[derive(Debug)]
pub struct Histogram {
    on: Arc<AtomicBool>,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Records one observation (no-op while the registry is disabled).
    ///
    /// Relaxed atomics mean concurrent recorders never lose events, though
    /// a scrape racing a record may observe `count` momentarily ahead of a
    /// bucket — exactness holds at quiescence, which is what the
    /// reconciliation tests measure.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.on.load(Relaxed) {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Per-bucket counts (non-cumulative), in bucket order.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.max.store(0, Relaxed);
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Entry {
    /// Metric family name (`dsf_page_reads_total`).
    pub(crate) family: String,
    /// Rendered label set (`shard="3"`), empty when unlabelled.
    pub(crate) labels: String,
    pub(crate) help: String,
    pub(crate) instrument: Instrument,
}

/// A collection of named instruments with one shared on/off switch.
///
/// Disabled by default: every handle registered from it no-ops until
/// [`Registry::enable`] flips the shared flag (and keeps no-opping again
/// after [`Registry::disable`]). Registration is idempotent — asking for an
/// existing `(family, labels)` pair returns the same underlying instrument.
#[derive(Debug, Default)]
pub struct Registry {
    on: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        assert!(valid_name(k), "invalid label name `{k}`");
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl Registry {
    /// An empty, **disabled** registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Starts recording: every handle's next event lands.
    pub fn enable(&self) {
        self.on.store(true, Relaxed);
    }

    /// Stops recording; values already accumulated remain readable.
    pub fn disable(&self) {
        self.on.store(false, Relaxed);
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.on.load(Relaxed)
    }

    /// The shared on/off flag, for wiring sibling structures (the span
    /// ring) to the same switch.
    pub fn enabled_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.on)
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        make: impl FnOnce(Arc<AtomicBool>) -> Instrument,
    ) -> Instrument {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let labels = render_labels(labels);
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(e) = entries
            .iter()
            .find(|e| e.family == name && e.labels == labels)
        {
            return e.instrument.clone();
        }
        let instrument = make(Arc::clone(&self.on));
        entries.push(Entry {
            family: name.to_string(),
            labels,
            help: help.to_string(),
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Registers (or retrieves) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Registers (or retrieves) a counter with a label set.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different
    /// instrument type, or on an invalid metric/label name.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, |on| {
            Instrument::Counter(Arc::new(Counter {
                on,
                value: AtomicU64::new(0),
            }))
        }) {
            Instrument::Counter(c) => c,
            other => panic!("`{name}` already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or retrieves) a gauge with a label set.
    ///
    /// # Panics
    ///
    /// See [`Registry::counter_with`].
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, |on| {
            Instrument::Gauge(Arc::new(Gauge {
                on,
                bits: AtomicU64::new(0f64.to_bits()),
            }))
        }) {
            Instrument::Gauge(g) => g,
            other => panic!("`{name}` already registered as a {}", other.type_name()),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or retrieves) a histogram with a label set.
    ///
    /// # Panics
    ///
    /// See [`Registry::counter_with`].
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        match self.register(name, labels, help, |on| {
            Instrument::Histogram(Arc::new(Histogram {
                on,
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }))
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("`{name}` already registered as a {}", other.type_name()),
        }
    }

    /// Zeroes every instrument (handles stay valid). Used by benches to
    /// separate phases and by tests for isolation.
    pub fn reset(&self) {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for e in entries.iter() {
            match &e.instrument {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }

    /// Number of registered instruments (samples may be larger: a
    /// histogram renders as many exposition lines).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn snapshot_entries(&self) -> Vec<Entry> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "events");
        let g = reg.gauge("g", "level");
        let h = reg.histogram("h", "sizes");
        c.add(5);
        g.set(3.5);
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!((h.count(), h.sum(), h.max()), (0, 0, 0));
    }

    #[test]
    fn enabled_registry_accumulates_and_resets() {
        let reg = Registry::new();
        reg.enable();
        let c = reg.counter("c_total", "events");
        let h = reg.histogram("h", "sizes");
        c.add(2);
        c.inc();
        h.record(0);
        h.record(3);
        h.record(1000);
        assert_eq!(c.get(), 3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1003);
        assert_eq!(h.max(), 1000);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 1); // zero
        assert_eq!(buckets[2], 1); // 3 ∈ (2,4]
        assert_eq!(buckets[10], 1); // 1000 ∈ (512,1024]
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn registration_is_idempotent_per_label_set() {
        let reg = Registry::new();
        reg.enable();
        let a = reg.counter_with("cmds_total", &[("shard", "0")], "per-shard");
        let b = reg.counter_with("cmds_total", &[("shard", "0")], "per-shard");
        let other = reg.counter_with("cmds_total", &[("shard", "1")], "per-shard");
        a.inc();
        assert_eq!(b.get(), 1, "same (name, labels) shares one instrument");
        assert_eq!(other.get(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    fn bucket_index_matches_access_histogram_contract() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(u64::MAX), 32);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 2);
        assert_eq!(bucket_upper_bound(10), 1024);
    }
}
