//! The bounded, drop-counting binary event ring.
//!
//! Events are stored *encoded* (varint frames, see [`crate::codec`]), so
//! capacity is a byte budget rather than an event count: a ring of
//! `1 MiB` holds on the order of 100k events regardless of how bursty the
//! per-command event mix is. When a push would overflow the budget, whole
//! frames are evicted from the front (oldest first) and counted as
//! dropped — the same contract as `dsf_telemetry::SpanRing`, one level
//! down the stack.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::codec::{decode_frames, get_varint, FlightEvent};

#[derive(Debug, Default)]
struct Inner {
    buf: VecDeque<u8>,
    dropped: u64,
    total: u64,
}

/// A bounded ring of encoded [`FlightEvent`] frames.
///
/// Pushes take a short mutex. The recorder is opt-in (see
/// [`crate::enable`]), so unlike the metrics registry this hot path may
/// lock: when the flight recorder is off — the default — no site ever
/// reaches the ring.
#[derive(Debug)]
pub struct FlightRing {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl FlightRing {
    /// A ring holding at most `capacity_bytes` of encoded frames.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "flight ring capacity must be non-zero");
        FlightRing {
            capacity: capacity_bytes,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Encodes and stores one event, evicting (and counting) the oldest
    /// frames when the byte budget would overflow.
    pub fn push(&self, event: &FlightEvent) {
        let mut frame = Vec::with_capacity(24);
        event.encode(&mut frame);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.total += 1;
        if frame.len() > self.capacity {
            // A single frame larger than the whole ring can never be
            // retained; count it dropped rather than wedging the buffer.
            inner.dropped += 1;
            return;
        }
        if inner.buf.len() + frame.len() > self.capacity {
            Self::evict_front(&mut inner, frame.len(), self.capacity);
        }
        inner.buf.extend(frame);
    }

    /// Evicts whole frames from the front until `incoming` more bytes fit
    /// under `capacity` — one `make_contiguous` and one `drain` for the
    /// whole batch, so a push that must displace many frames stays linear
    /// in the evicted bytes rather than quadratic in the buffer.
    fn evict_front(inner: &mut Inner, incoming: usize, capacity: usize) {
        let retained = inner.buf.len();
        let head = inner.buf.make_contiguous();
        let mut skip = 0usize;
        let mut evicted = 0u64;
        while retained - skip + incoming > capacity && skip < head.len() {
            let mut pos = skip;
            skip = match get_varint(head, &mut pos) {
                Some(len) => (pos + len as usize).min(head.len()),
                // Unreachable for frames written by `push`, but never loop
                // forever on a buffer we cannot parse.
                None => head.len(),
            };
            evicted += 1;
        }
        inner.buf.drain(..skip);
        inner.dropped += evicted;
    }

    /// Decodes and returns the retained events (oldest first) along with
    /// the drop counter.
    pub fn snapshot(&self) -> (Vec<FlightEvent>, u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.buf.make_contiguous();
        let (head, _) = inner.buf.as_slices();
        (decode_frames(head), inner.dropped)
    }

    /// Events ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// Events evicted by the byte budget.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Retained encoded bytes right now.
    pub fn bytes(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .len()
    }

    /// The byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empties the ring and zeroes the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = Inner::default();
    }

    /// The retained frames as raw bytes (the persist payload).
    pub fn raw(&self) -> Vec<u8> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.buf.make_contiguous();
        let (head, _) = inner.buf.as_slices();
        head.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CommandKind;

    fn begin(seq: u64) -> FlightEvent {
        FlightEvent::CommandBegin {
            seq,
            kind: CommandKind::Insert,
            target: seq,
        }
    }

    #[test]
    fn ring_retains_in_order() {
        let ring = FlightRing::new(1 << 16);
        for i in 1..=5 {
            ring.push(&begin(i));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(ring.total(), 5);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn byte_budget_evicts_whole_frames_oldest_first() {
        // Each begin frame is a handful of bytes; a tiny budget forces
        // eviction while every retained frame must still decode cleanly.
        let ring = FlightRing::new(24);
        for i in 1..=50 {
            ring.push(&begin(i));
        }
        let (events, dropped) = ring.snapshot();
        assert!(dropped > 0);
        assert_eq!(dropped + events.len() as u64, 50);
        assert_eq!(ring.total(), 50);
        // The survivors are the newest, contiguous, in order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq()).collect();
        let expect: Vec<u64> = (51 - events.len() as u64..=50).collect();
        assert_eq!(seqs, expect);
        assert!(ring.bytes() <= 24);
    }

    #[test]
    fn oversized_frame_is_counted_not_wedged() {
        let ring = FlightRing::new(8);
        ring.push(&FlightEvent::Moment {
            seq: 1,
            moment: 0,
            counts: vec![u64::MAX; 64],
        });
        assert_eq!(ring.dropped(), 1);
        ring.push(&begin(2));
        let (events, _) = ring.snapshot();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let ring = FlightRing::new(1 << 10);
        ring.push(&begin(1));
        ring.clear();
        assert_eq!(ring.total(), 0);
        assert_eq!(ring.dropped(), 0);
        assert!(ring.snapshot().0.is_empty());
    }
}
