//! Replay: per-command causal cost attribution and bound auditing.
//!
//! A flight log is a flat event stream; replay groups it by command
//! sequence number and reconstructs, for every completed command, the
//! breakdown *user-step vs SHIFT vs ACTIVATE vs rollback vs WAL* of its
//! page charges, its SHIFT-step count, and its causal trace (which nodes
//! were activated, rolled back, shifted). Each command is then checked
//! against two budgets:
//!
//! * the configured **J-step budget** — CONTROL 2 runs at most `J`
//!   SELECT→SHIFT iterations per command (step 4), and
//! * the **page budget** `K·(3J + 2) + 2` — step 1 reads and rewrites one
//!   slot of at most `K` pages (plus the probe's constant), and each of
//!   the at most `J` SHIFTs reads its source slot, rewrites the source's
//!   packed span, and writes its destination slot: at most `3K` pages
//!   (the store packs records densely, so removal rewrites the source —
//!   the same accounting `take`/`put` charge). With
//!   `J = Θ(log²M/(D−d))` this budget *is* the paper's `O(log²M/(D−d))`
//!   worst-case bound, stated in physical pages.
//!
//! The arg-max offender (`worst`) carries its full causal trace, so a
//! histogram outlier can finally be answered with *which command, which
//! phase, which nodes*.

use std::collections::BTreeMap;

use crate::codec::{CommandKind, FlightEvent, Phase, PHASES};
use crate::log::FlightLog;

/// The audit budget derived from a file's resolved configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundBudget {
    /// CONTROL 2's per-command SHIFT budget `J`.
    pub j: u64,
    /// Pages per slot (`K`; 1 unless macro-blocking is active).
    pub k: u64,
    /// `L = ⌈log₂ M⌉` — calibrator depth.
    pub log_slots: u64,
    /// `D# − d#` — the per-slot density gap the bound divides by.
    pub gap: u64,
}

impl BoundBudget {
    /// The worst-case page-access budget per command (see module docs).
    pub fn page_limit(&self) -> u64 {
        self.k * (3 * self.j + 2) + 2
    }
}

/// One SHIFT in a command's causal trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShiftTrace {
    /// The warned node (heap index).
    pub node: u64,
    /// Source slot.
    pub source: u64,
    /// Destination slot.
    pub dest: u64,
    /// Records moved.
    pub moved: u64,
}

/// The reconstructed cost story of one completed command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandCost {
    /// Command sequence number.
    pub seq: u64,
    /// Insert or delete (`None` when the begin frame was evicted).
    pub kind: Option<CommandKind>,
    /// Slot (or shard) the command targeted.
    pub target: u64,
    /// Page charges per [`Phase`] (indexed by [`Phase::index`]).
    pub phase_pages: [u64; PHASES],
    /// Total page accesses, from the authoritative `CommandEnd` frame.
    pub accesses: u64,
    /// SHIFT invocations, from the `CommandEnd` frame.
    pub shift_steps: u64,
    /// Wall time in microseconds.
    pub micros: u64,
    /// Causal trace: every SHIFT in order.
    pub shifts: Vec<ShiftTrace>,
    /// Causal trace: every ACTIVATE `(node, initial DEST)`.
    pub activations: Vec<(u64, u64)>,
    /// Causal trace: every roll-back `(node, new DEST)`.
    pub rollbacks: Vec<(u64, u64)>,
    /// Warning flags lowered during the command.
    pub flags_lowered: u64,
    /// WAL frames appended for the command.
    pub wal_frames: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// Dirty pages written back in the background on this command's
    /// behalf (charged by the I/O scheduler when the writeback completes,
    /// possibly long after the command ended). Tracked beside the
    /// foreground `phase_pages` — background writeback is deferred work,
    /// not part of the per-command access total `reconciles()` checks.
    pub writeback_pages: u64,
    /// fsync time charged, microseconds.
    pub fsync_micros: u64,
    /// Shard-lock wait before the command, microseconds.
    pub lock_wait_micros: u64,
    /// Flag-stable moment snapshots `(class, per-slot counts)` — the rows
    /// of a Figure-4-style table (class 0 = after step 3, 1 = after 4c).
    pub moments: Vec<(u8, Vec<u64>)>,
    /// Whether the begin frame survived in the ring.
    pub begun: bool,
    /// Whether the end frame was seen (commands without one are dropped
    /// from attribution — they were cut off by eviction or a cancel).
    pub ended: bool,
    /// Whether the command was cancelled (replace / miss / refusal).
    pub cancelled: bool,
}

impl CommandCost {
    fn new(seq: u64) -> Self {
        CommandCost {
            seq,
            kind: None,
            target: 0,
            phase_pages: [0; PHASES],
            accesses: 0,
            shift_steps: 0,
            micros: 0,
            shifts: Vec::new(),
            activations: Vec::new(),
            rollbacks: Vec::new(),
            flags_lowered: 0,
            wal_frames: 0,
            wal_bytes: 0,
            writeback_pages: 0,
            fsync_micros: 0,
            lock_wait_micros: 0,
            moments: Vec::new(),
            begun: false,
            ended: false,
            cancelled: false,
        }
    }

    /// Pages charged to the user step (step 1).
    pub fn user_pages(&self) -> u64 {
        self.phase_pages[Phase::User.index()]
    }

    /// Pages charged to SHIFTs (step 4b).
    pub fn shift_pages(&self) -> u64 {
        self.phase_pages[Phase::Shift.index()]
    }

    /// Pages charged to ACTIVATE (step 3; calibrator work, normally 0).
    pub fn activate_pages(&self) -> u64 {
        self.phase_pages[Phase::Activate.index()]
    }

    /// Pages charged to roll-back rules (normally 0).
    pub fn rollback_pages(&self) -> u64 {
        self.phase_pages[Phase::Rollback.index()]
    }

    /// Pages charged while in the WAL phase (the log itself is written in
    /// frames, not pages, so this is 0 unless a backend charges pages).
    pub fn wal_pages(&self) -> u64 {
        self.phase_pages[Phase::Wal.index()]
    }

    /// Sum of the per-phase page charges. For a fully captured command
    /// this equals [`CommandCost::accesses`] exactly — the reconciliation
    /// replay asserts.
    pub fn attributed(&self) -> u64 {
        self.phase_pages
            .iter()
            .fold(0u64, |a, &p| a.saturating_add(p))
    }
}

/// Why a command violated its budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// `shift_steps > J`.
    JBudget {
        /// Offending command.
        seq: u64,
        /// Its SHIFT count.
        shift_steps: u64,
    },
    /// `accesses > page_limit()`.
    PageBound {
        /// Offending command.
        seq: u64,
        /// Its page-access total.
        accesses: u64,
    },
}

/// The audit verdict over a whole log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// The budget audited against.
    pub budget: BoundBudget,
    /// The page limit that was enforced.
    pub page_limit: u64,
    /// Every violation found, in seq order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// True when no command exceeded either budget.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The result of replaying a log: every completed command's cost story.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Completed commands in sequence order.
    pub commands: Vec<CommandCost>,
    /// Commands seen but cancelled (replaces, misses, refusals).
    pub cancelled: u64,
    /// Commands begun whose end frame is missing (eviction casualties).
    pub incomplete: u64,
    /// Events the ring evicted before the snapshot.
    pub dropped: u64,
    /// The audit budget carried by the log.
    pub budget: BoundBudget,
}

impl Attribution {
    /// Groups a log's events by command and reconstructs each cost story.
    pub fn replay(log: &FlightLog) -> Self {
        let mut by_seq: BTreeMap<u64, CommandCost> = BTreeMap::new();
        for ev in &log.events {
            let seq = ev.seq();
            if seq == 0 {
                continue; // events recorded outside any command
            }
            let c = by_seq.entry(seq).or_insert_with(|| CommandCost::new(seq));
            match ev {
                FlightEvent::CommandBegin { kind, target, .. } => {
                    c.begun = true;
                    c.kind = Some(*kind);
                    c.target = *target;
                }
                FlightEvent::CommandEnd {
                    accesses,
                    shift_steps,
                    micros,
                    ..
                } => {
                    c.ended = true;
                    c.accesses = *accesses;
                    c.shift_steps = *shift_steps;
                    c.micros = *micros;
                }
                FlightEvent::CommandCancel { .. } => c.cancelled = true,
                // Reads and writes both count as accesses (the paper's
                // cost unit does not distinguish them).
                FlightEvent::Access {
                    phase,
                    kind: _,
                    pages,
                    ..
                // All accumulators saturate: a log is untrusted input (any
                // `.flight` file parses), so adversarial values must not
                // panic the replayer.
                } => {
                    let p = &mut c.phase_pages[phase.index()];
                    *p = p.saturating_add(*pages);
                }
                FlightEvent::Shift {
                    node,
                    source,
                    dest,
                    moved,
                    ..
                } => c.shifts.push(ShiftTrace {
                    node: *node,
                    source: *source,
                    dest: *dest,
                    moved: *moved,
                }),
                FlightEvent::Activate { node, dest, .. } => c.activations.push((*node, *dest)),
                FlightEvent::Rollback { node, new_dest, .. } => {
                    c.rollbacks.push((*node, *new_dest))
                }
                FlightEvent::FlagLowered { .. } => c.flags_lowered += 1,
                FlightEvent::WalFrame { bytes, .. } => {
                    c.wal_frames += 1;
                    c.wal_bytes = c.wal_bytes.saturating_add(*bytes);
                }
                FlightEvent::Fsync { micros, .. } => {
                    c.fsync_micros = c.fsync_micros.saturating_add(*micros)
                }
                FlightEvent::LockWait { micros, .. } => {
                    c.lock_wait_micros = c.lock_wait_micros.saturating_add(*micros)
                }
                FlightEvent::Moment {
                    moment, counts, ..
                } => c.moments.push((*moment, counts.clone())),
                FlightEvent::Writeback { pages, .. } => {
                    c.writeback_pages = c.writeback_pages.saturating_add(*pages)
                }
            }
        }
        let mut commands = Vec::with_capacity(by_seq.len());
        let mut cancelled = 0u64;
        let mut incomplete = 0u64;
        for (_, c) in by_seq {
            if c.cancelled {
                cancelled += 1;
            } else if c.ended {
                commands.push(c);
            } else {
                incomplete += 1;
            }
        }
        Attribution {
            commands,
            cancelled,
            incomplete,
            dropped: log.dropped,
            budget: log.budget,
        }
    }

    /// Completed commands.
    pub fn command_count(&self) -> u64 {
        self.commands.len() as u64
    }

    /// Sum of per-command access totals (saturating — logs are untrusted).
    pub fn total_accesses(&self) -> u64 {
        self.commands
            .iter()
            .fold(0u64, |a, c| a.saturating_add(c.accesses))
    }

    /// Sum of background writeback pages attributed across commands.
    pub fn total_writeback_pages(&self) -> u64 {
        self.commands
            .iter()
            .fold(0u64, |a, c| a.saturating_add(c.writeback_pages))
    }

    /// The largest per-command access total.
    pub fn max_accesses(&self) -> u64 {
        self.commands.iter().map(|c| c.accesses).max().unwrap_or(0)
    }

    /// The arg-max offender: the command with the most page accesses
    /// (earliest wins ties, matching `OpStats::max_accesses` semantics).
    pub fn worst(&self) -> Option<&CommandCost> {
        self.commands
            .iter()
            .max_by(|a, b| a.accesses.cmp(&b.accesses).then(b.seq.cmp(&a.seq)))
    }

    /// The `k` worst commands, most expensive first (ties by seq).
    pub fn top(&self, k: usize) -> Vec<&CommandCost> {
        let mut v: Vec<&CommandCost> = self.commands.iter().collect();
        v.sort_by(|a, b| b.accesses.cmp(&a.accesses).then(a.seq.cmp(&b.seq)));
        v.truncate(k);
        v
    }

    /// Looks a command up by sequence number.
    pub fn find(&self, seq: u64) -> Option<&CommandCost> {
        self.commands.iter().find(|c| c.seq == seq)
    }

    /// Whether every fully captured command's per-phase attribution sums
    /// to its authoritative total. Only meaningful when nothing was
    /// dropped (an evicted access frame loses its pages).
    pub fn reconciles(&self) -> bool {
        self.commands
            .iter()
            .filter(|c| c.begun)
            .all(|c| c.attributed() == c.accesses)
    }

    /// Audits every command against the J-step budget and the page bound.
    pub fn audit(&self) -> AuditReport {
        let page_limit = self.budget.page_limit();
        let mut violations = Vec::new();
        for c in &self.commands {
            if c.shift_steps > self.budget.j {
                violations.push(Violation::JBudget {
                    seq: c.seq,
                    shift_steps: c.shift_steps,
                });
            }
            if c.accesses > page_limit {
                violations.push(Violation::PageBound {
                    seq: c.seq,
                    accesses: c.accesses,
                });
            }
        }
        AuditReport {
            budget: self.budget,
            page_limit,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::AccessKind;

    fn budget() -> BoundBudget {
        BoundBudget {
            j: 3,
            k: 1,
            log_slots: 3,
            gap: 9,
        }
    }

    fn log(events: Vec<FlightEvent>) -> FlightLog {
        FlightLog {
            budget: budget(),
            total: events.len() as u64,
            dropped: 0,
            events,
        }
    }

    fn command(seq: u64, accesses: u64, shift_steps: u64) -> Vec<FlightEvent> {
        vec![
            FlightEvent::CommandBegin {
                seq,
                kind: CommandKind::Insert,
                target: 7,
            },
            FlightEvent::Access {
                seq,
                phase: Phase::User,
                kind: AccessKind::Read,
                pages: 2,
            },
            FlightEvent::Access {
                seq,
                phase: Phase::Shift,
                kind: AccessKind::Write,
                pages: accesses - 2,
            },
            FlightEvent::CommandEnd {
                seq,
                accesses,
                shift_steps,
                micros: 10,
            },
        ]
    }

    #[test]
    fn attribution_reconstructs_phases_and_totals() {
        let mut events = command(1, 6, 2);
        events.extend(command(2, 18, 3));
        let attr = Attribution::replay(&log(events));
        assert_eq!(attr.command_count(), 2);
        assert_eq!(attr.total_accesses(), 24);
        assert_eq!(attr.max_accesses(), 18);
        assert!(attr.reconciles());
        let worst = attr.worst().unwrap();
        assert_eq!(worst.seq, 2);
        assert_eq!(worst.user_pages(), 2);
        assert_eq!(worst.shift_pages(), 16);
        assert_eq!(attr.top(1)[0].seq, 2);
    }

    #[test]
    fn cancelled_commands_are_excluded() {
        let mut events = command(1, 6, 1);
        events.push(FlightEvent::CommandBegin {
            seq: 2,
            kind: CommandKind::Insert,
            target: 0,
        });
        events.push(FlightEvent::CommandCancel { seq: 2 });
        let attr = Attribution::replay(&log(events));
        assert_eq!(attr.command_count(), 1);
        assert_eq!(attr.cancelled, 1);
    }

    #[test]
    fn audit_flags_both_budget_violations() {
        // J = 3, K = 1 → page limit = 1·(3·3+2)+2 = 13.
        assert_eq!(budget().page_limit(), 13);
        let mut events = command(1, 11, 3); // within both budgets
        events.extend(command(2, 14, 4)); // violates both
        let attr = Attribution::replay(&log(events));
        let report = attr.audit();
        assert!(!report.ok());
        assert_eq!(
            report.violations,
            vec![
                Violation::JBudget {
                    seq: 2,
                    shift_steps: 4
                },
                Violation::PageBound {
                    seq: 2,
                    accesses: 14
                },
            ]
        );
    }

    #[test]
    fn missing_end_counts_as_incomplete() {
        let events = vec![FlightEvent::CommandBegin {
            seq: 5,
            kind: CommandKind::Delete,
            target: 1,
        }];
        let attr = Attribution::replay(&log(events));
        assert_eq!(attr.command_count(), 0);
        assert_eq!(attr.incomplete, 1);
    }
}
