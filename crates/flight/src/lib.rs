//! # dsf-flight — the workspace's flight recorder.
//!
//! The paper's headline claim is a *worst-case* per-command bound of
//! `O(log²M/(D−d))` page accesses — yet an aggregate histogram can only
//! say that some command was expensive, not *which* one or *why*. This
//! crate records a causal, per-command event stream across every layer of
//! the stack:
//!
//! * **dsf-core** records command begin/end, SHIFT / ACTIVATE / roll-back
//!   / flag events;
//! * **dsf-pagestore** records every page charge, tagged with the
//!   algorithm [`Phase`] that caused it;
//! * **dsf-durable** records WAL frames and fsyncs;
//! * **dsf-concurrent** records shard-lock waits;
//!
//! all under a single monotonically increasing **command sequence number**
//! threaded through the stack via a thread-local (each command runs on one
//! thread, so concurrent shard commands never collide). Events are varint
//! frames in a bounded, drop-counting byte ring ([`FlightRing`]); a
//! snapshot persists to a [`FlightLog`] (`.flight` file) and replays into
//! per-command [`Attribution`] with J-budget and page-bound auditing.
//!
//! Like the step trace and the telemetry spine, the recorder is **off by
//! default**: every instrumentation site is a single relaxed-load branch
//! until [`enable`] is called. This crate sits at the very bottom of the
//! workspace graph (std only) so every layer can record into it.
//!
//! ```
//! use dsf_flight as flight;
//!
//! flight::clear();
//! flight::enable();
//! let seq = flight::begin_command(flight::CommandKind::Insert, 7);
//! flight::record_access(flight::AccessKind::Read, 2);
//! flight::end_command(2, 0, 15);
//! flight::disable();
//!
//! let log = flight::snapshot_log(flight::BoundBudget { j: 3, k: 1, log_slots: 3, gap: 9 });
//! let attr = log.replay();
//! assert_eq!(attr.command_count(), 1);
//! assert_eq!(attr.commands[0].seq, seq);
//! assert_eq!(attr.commands[0].user_pages(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod log;
mod replay;
mod ring;

pub use codec::{
    decode_frames, get_varint, put_varint, AccessKind, CommandKind, FlightEvent, Phase, PHASES,
};
pub use log::{FlightLog, FLIGHT_MAGIC, FLIGHT_VERSION};
pub use replay::{Attribution, AuditReport, BoundBudget, CommandCost, ShiftTrace, Violation};
pub use ring::FlightRing;

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::OnceLock;

/// Default byte budget of the global ring (~100k events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1 << 20;

struct Globals {
    ring: FlightRing,
    on: AtomicBool,
    moments: AtomicBool,
    seq: AtomicU64,
}

fn globals() -> &'static Globals {
    static CELL: OnceLock<Globals> = OnceLock::new();
    CELL.get_or_init(|| Globals {
        ring: FlightRing::new(DEFAULT_FLIGHT_CAPACITY),
        on: AtomicBool::new(false),
        moments: AtomicBool::new(false),
        // Sequence numbers start at 1: seq 0 means "no command".
        seq: AtomicU64::new(1),
    })
}

thread_local! {
    /// The command currently (or most recently) executing on this thread.
    /// Kept after `end_command` so the durability layer can stamp the WAL
    /// frames it appends *after* the in-memory command completed.
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    /// A sequence number allocated ahead of the command (by the sharding
    /// layer, which observes the lock wait *before* `begin_command` runs).
    static PENDING: Cell<u64> = const { Cell::new(0) };
    /// The phase accesses are attributed to; `PHASE_IDLE` (no command in
    /// flight) suppresses access recording entirely, so lookups, scans and
    /// bulk loads never pollute per-command attribution.
    static PHASE: Cell<u8> = const { Cell::new(PHASE_IDLE) };
}

const PHASE_IDLE: u8 = u8::MAX;

/// Starts recording. The ring's prior contents are kept; call [`clear`]
/// first for a fresh capture.
pub fn enable() {
    globals().on.store(true, Relaxed);
}

/// Stops recording (sites revert to a single not-taken branch).
pub fn disable() {
    globals().on.store(false, Relaxed);
}

/// Whether the recorder is on — the one branch every disabled site takes.
#[inline]
pub fn enabled() -> bool {
    globals().on.load(Relaxed)
}

/// Turns flag-stable moment snapshots on or off. Each snapshot costs
/// `O(M)` (one count per slot), so this is a separate opt-in on top of
/// [`enable`] — `dsf flight record --moments` uses it to build the
/// Figure-4-style per-moment table.
pub fn set_moments(on: bool) {
    globals().moments.store(on, Relaxed);
}

/// Whether moment snapshots should be captured right now.
#[inline]
pub fn moments_enabled() -> bool {
    let g = globals();
    g.on.load(Relaxed) && g.moments.load(Relaxed)
}

/// Empties the global ring and resets its counters (the sequence counter
/// keeps climbing — it is monotonic for the life of the process).
pub fn clear() {
    globals().ring.clear();
}

/// Direct access to the global ring (snapshotting, capacity checks).
pub fn ring() -> &'static FlightRing {
    &globals().ring
}

fn alloc_seq() -> u64 {
    globals().seq.fetch_add(1, Relaxed)
}

/// Allocates the next command's sequence number *before* the command
/// begins — the sharding layer calls this so its lock-wait event carries
/// the same seq the command will run under. The parked number is consumed
/// by the next [`begin_command`] on this thread. Returns 0 when disabled.
pub fn prepare_command() -> u64 {
    if !enabled() {
        return 0;
    }
    let seq = alloc_seq();
    PENDING.with(|p| p.set(seq));
    seq
}

/// Marks the start of a structural command on this thread: consumes the
/// [`prepare_command`] seq if one is parked (else allocates), records a
/// `CommandBegin` frame, and switches the phase to [`Phase::User`].
/// Returns the seq, or 0 while disabled.
pub fn begin_command(kind: CommandKind, target: u64) -> u64 {
    if !enabled() {
        return 0;
    }
    let seq = {
        let parked = PENDING.with(|p| p.replace(0));
        if parked != 0 {
            parked
        } else {
            alloc_seq()
        }
    };
    CURRENT.with(|c| c.set(seq));
    PHASE.with(|p| p.set(Phase::User.index() as u8));
    globals()
        .ring
        .push(&FlightEvent::CommandBegin { seq, kind, target });
    seq
}

/// Marks the command complete. `accesses` must be the same per-command
/// page-access delta `OpStats::record_command` receives — replay treats it
/// as the authoritative total the per-phase breakdown must sum to. The
/// seq stays parked on the thread (idle phase) so the durability layer
/// can still stamp WAL frames onto it.
pub fn end_command(accesses: u64, shift_steps: u64, micros: u64) {
    if !enabled() {
        return;
    }
    let seq = CURRENT.with(|c| c.get());
    if seq == 0 {
        return;
    }
    globals().ring.push(&FlightEvent::CommandEnd {
        seq,
        accesses,
        shift_steps,
        micros,
    });
    PHASE.with(|p| p.set(PHASE_IDLE));
}

/// Voids the begun command: it turned out to be a value replace, a miss,
/// or a capacity refusal — not a structural command. Replay discards it.
pub fn cancel_command() {
    if !enabled() {
        return;
    }
    let seq = CURRENT.with(|c| c.get());
    if seq == 0 {
        return;
    }
    globals().ring.push(&FlightEvent::CommandCancel { seq });
    PHASE.with(|p| p.set(PHASE_IDLE));
}

/// Scoped phase override: sets the attribution phase for the enclosing
/// scope and restores the previous one on drop. Constructed via [`phase`].
pub struct PhaseGuard {
    prev: u8,
    armed: bool,
}

/// Enters `p` for the current scope (no-op while disabled).
///
/// `dsf-core` wraps SHIFT in [`Phase::Shift`] and ACTIVATE in
/// [`Phase::Activate`]; `dsf-durable` wraps its WAL append in
/// [`Phase::Wal`] (which also re-arms access recording for the frames it
/// writes *after* the command ended).
#[must_use = "the phase reverts when the guard drops"]
pub fn phase(p: Phase) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard {
            prev: 0,
            armed: false,
        };
    }
    let prev = PHASE.with(|c| c.replace(p.index() as u8));
    PhaseGuard { prev, armed: true }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if self.armed {
            PHASE.with(|c| c.set(self.prev));
        }
    }
}

/// Records `pages` page charges under the current command and phase.
/// Skipped while disabled, while no command is in flight (idle phase), or
/// when `pages == 0`.
#[inline]
pub fn record_access(kind: AccessKind, pages: u64) {
    if !enabled() || pages == 0 {
        return;
    }
    let phase_code = PHASE.with(|p| p.get());
    if phase_code == PHASE_IDLE {
        return;
    }
    let seq = CURRENT.with(|c| c.get());
    if seq == 0 {
        return;
    }
    let phase = match phase_code {
        0 => Phase::User,
        1 => Phase::Shift,
        2 => Phase::Activate,
        3 => Phase::Rollback,
        _ => Phase::Wal,
    };
    globals().ring.push(&FlightEvent::Access {
        seq,
        phase,
        kind,
        pages,
    });
}

fn record_under_current(make: impl FnOnce(u64) -> FlightEvent) {
    if !enabled() {
        return;
    }
    let seq = CURRENT.with(|c| c.get());
    if seq == 0 {
        return;
    }
    globals().ring.push(&make(seq));
}

/// Records one SHIFT(v) invocation for the current command.
pub fn record_shift(node: u64, source: u64, dest: u64, moved: u64) {
    record_under_current(|seq| FlightEvent::Shift {
        seq,
        node,
        source,
        dest,
        moved,
    });
}

/// Records one ACTIVATE(w) for the current command.
pub fn record_activate(node: u64, dest: u64) {
    record_under_current(|seq| FlightEvent::Activate { seq, node, dest });
}

/// Records a roll-back rule application for the current command.
pub fn record_rollback(node: u64, new_dest: u64) {
    record_under_current(|seq| FlightEvent::Rollback {
        seq,
        node,
        new_dest,
    });
}

/// Records a lowered warning flag for the current command.
pub fn record_flag_lowered(node: u64) {
    record_under_current(|seq| FlightEvent::FlagLowered { seq, node });
}

/// Records a WAL frame appended on behalf of the current (just-ended)
/// command.
pub fn record_wal_frame(bytes: u64) {
    record_under_current(|seq| FlightEvent::WalFrame { seq, bytes });
}

/// Records an fsync charged to the current (just-ended) command.
pub fn record_fsync(micros: u64) {
    record_under_current(|seq| FlightEvent::Fsync { seq, micros });
}

/// The command seq currently (or most recently) executing on this thread;
/// 0 while disabled or before any command ran. The buffer pool reads this
/// when a command dirties a frame, so a later *background* writeback — on
/// a scheduler worker thread whose own thread-local seq is always 0 — can
/// still be attributed to the command that caused it.
#[inline]
pub fn current_seq() -> u64 {
    if !enabled() {
        return 0;
    }
    CURRENT.with(|c| c.get())
}

/// Records `pages` of background writeback on behalf of `seq` — the
/// command that dirtied the pages, captured at dirty time via
/// [`current_seq`]. Takes the seq explicitly because writeback completes
/// on a worker thread, outside any command. Skipped for `seq == 0`
/// (pages dirtied outside a recorded command carry no attribution).
pub fn record_writeback(seq: u64, pages: u64) {
    if !enabled() || seq == 0 || pages == 0 {
        return;
    }
    globals().ring.push(&FlightEvent::Writeback { seq, pages });
}

/// Records a shard write-lock wait for the *upcoming* command (the seq
/// parked by [`prepare_command`]).
pub fn record_lock_wait(shard: u64, micros: u64) {
    if !enabled() {
        return;
    }
    let seq = PENDING.with(|p| p.get());
    if seq == 0 {
        return;
    }
    globals()
        .ring
        .push(&FlightEvent::LockWait { seq, shard, micros });
}

/// Records a flag-stable moment snapshot (per-slot record counts) for the
/// current command. Only captured when [`set_moments`] is on.
pub fn record_moment(moment: u8, counts: &[u64]) {
    if !moments_enabled() {
        return;
    }
    record_under_current(|seq| FlightEvent::Moment {
        seq,
        moment,
        counts: counts.to_vec(),
    });
}

/// Snapshots the global ring into a [`FlightLog`] carrying `budget` (the
/// recording file's resolved configuration) for later auditing.
pub fn snapshot_log(budget: BoundBudget) -> FlightLog {
    let g = globals();
    let (events, dropped) = g.ring.snapshot();
    FlightLog {
        budget,
        total: g.ring.total(),
        dropped,
        events,
    }
}

/// Snapshots the global ring and writes it to a `.flight` file.
pub fn save(path: impl AsRef<std::path::Path>, budget: BoundBudget) -> std::io::Result<()> {
    snapshot_log(budget).save(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global recorder is process-wide state; exercise it from one
    /// test so parallel test threads cannot interleave captures.
    #[test]
    fn global_recorder_threads_one_seq_through_a_command() {
        clear();
        enable();

        // The sharding layer parks a seq with the lock wait...
        let prepared = prepare_command();
        record_lock_wait(2, 40);
        // ...the core consumes it for the command...
        let seq = begin_command(CommandKind::Insert, 7);
        assert_eq!(seq, prepared);
        record_access(AccessKind::Read, 2);
        {
            let _g = phase(Phase::Shift);
            record_shift(15, 7, 6, 6);
            record_access(AccessKind::Write, 2);
        }
        record_access(AccessKind::Write, 1);
        end_command(5, 1, 33);
        // ...and the durability layer stamps its post-command WAL frame.
        {
            let _g = phase(Phase::Wal);
            record_wal_frame(41);
            record_fsync(120);
        }

        // Idle-phase charges (a lookup, say) must not be attributed.
        record_access(AccessKind::Read, 99);

        // A replace: begun, then cancelled.
        begin_command(CommandKind::Insert, 3);
        record_access(AccessKind::Read, 1);
        cancel_command();

        disable();
        let log = snapshot_log(BoundBudget {
            j: 3,
            k: 1,
            log_slots: 3,
            gap: 9,
        });
        let attr = log.replay();
        assert_eq!(attr.command_count(), 1);
        assert_eq!(attr.cancelled, 1);
        let c = &attr.commands[0];
        assert_eq!(c.seq, seq);
        assert_eq!(c.user_pages(), 3);
        assert_eq!(c.shift_pages(), 2);
        assert_eq!(c.attributed(), c.accesses);
        assert_eq!(c.wal_frames, 1);
        assert_eq!(c.fsync_micros, 120);
        assert_eq!(c.lock_wait_micros, 40);
        assert_eq!(c.shifts.len(), 1);
        assert!(attr.reconciles());
        assert!(attr.audit().ok());
        clear();
    }

    #[test]
    fn disabled_recorder_is_inert() {
        // Never enables: every call must be a no-op regardless of what the
        // parallel test above does to its own window of the ring.
        assert_eq!(begin_command(CommandKind::Delete, 0), 0);
        assert_eq!(prepare_command(), 0);
        end_command(1, 0, 0);
        record_access(AccessKind::Read, 5);
        let _g = phase(Phase::Shift);
    }
}
