//! Compact binary framing for flight events.
//!
//! Every event is one *frame*: a LEB128 varint length prefix followed by a
//! one-byte event tag and the event's fields, each a varint. Frames are
//! self-delimiting, so a bounded ring can evict whole frames from its front
//! without decoding them, and a truncated tail (a frame cut off by a crash
//! mid-write) is detected rather than misparsed.

use std::io::{self, Read};

/// Which user command a flight trace belongs to (mirrors
/// `dsf_core::CommandKind`, re-declared here so this crate stays at the
/// bottom of the dependency graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// An insertion.
    Insert,
    /// A deletion.
    Delete,
}

impl CommandKind {
    fn code(self) -> u64 {
        match self {
            CommandKind::Insert => 0,
            CommandKind::Delete => 1,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(CommandKind::Insert),
            1 => Some(CommandKind::Delete),
            _ => None,
        }
    }

    /// `"insert"` or `"delete"` — the label used by spans and exports.
    pub fn label(self) -> &'static str {
        match self {
            CommandKind::Insert => "insert",
            CommandKind::Delete => "delete",
        }
    }
}

/// The algorithm phase a page charge is attributed to. `User` covers the
/// paper's step 1 (locating the slot and applying the user's command);
/// `Shift`, `Activate` and `Rollback` are CONTROL 2's steps 4b, 3 and the
/// roll-back rules; `Wal` is the durability layer's post-command append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Step 1: search + apply the user's insert/delete.
    User,
    /// Step 4b: a SHIFT moving records between slots.
    Shift,
    /// Step 3: ACTIVATE (calibrator-only; normally charges no pages).
    Activate,
    /// Roll-back rule applications (calibrator-only).
    Rollback,
    /// WAL frame append / fsync by `dsf-durable`.
    Wal,
}

/// Number of distinct [`Phase`]s (array-index bound for attribution).
pub const PHASES: usize = 5;

impl Phase {
    /// Stable index into per-phase accumulator arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::User => 0,
            Phase::Shift => 1,
            Phase::Activate => 2,
            Phase::Rollback => 3,
            Phase::Wal => 4,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(Phase::User),
            1 => Some(Phase::Shift),
            2 => Some(Phase::Activate),
            3 => Some(Phase::Rollback),
            4 => Some(Phase::Wal),
            _ => None,
        }
    }
}

/// Read vs write page charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Physical page read.
    Read,
    /// Physical page write.
    Write,
}

impl AccessKind {
    fn code(self) -> u64 {
        match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        match c {
            0 => Some(AccessKind::Read),
            1 => Some(AccessKind::Write),
            _ => None,
        }
    }
}

/// One recorded event. Every variant carries the command sequence number
/// (`seq`) it belongs to — the single identity threaded through dsf-core,
/// dsf-pagestore, dsf-durable and dsf-concurrent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEvent {
    /// A structural command started (step 1 about to run).
    CommandBegin {
        /// Command sequence number.
        seq: u64,
        /// Insert or delete.
        kind: CommandKind,
        /// The slot (or shard) the command targets.
        target: u64,
    },
    /// The command completed; `accesses` is the authoritative per-command
    /// page-access total (the same delta `OpStats::record_command` sees).
    CommandEnd {
        /// Command sequence number.
        seq: u64,
        /// Total page accesses charged to the command.
        accesses: u64,
        /// CONTROL 2 SHIFT invocations the command ran.
        shift_steps: u64,
        /// Wall-clock duration in microseconds.
        micros: u64,
    },
    /// The begun command turned out not to be structural (a value replace,
    /// a miss, or a capacity refusal) — replay discards its events.
    CommandCancel {
        /// Command sequence number.
        seq: u64,
    },
    /// Page accesses charged while `seq` was in `phase`.
    Access {
        /// Command sequence number.
        seq: u64,
        /// Phase the charge is attributed to.
        phase: Phase,
        /// Read or write.
        kind: AccessKind,
        /// Pages charged.
        pages: u64,
    },
    /// One SHIFT(v) invocation (step 4b).
    Shift {
        /// Command sequence number.
        seq: u64,
        /// The warned node `v` (heap index).
        node: u64,
        /// Source slot records left.
        source: u64,
        /// Destination slot records entered.
        dest: u64,
        /// Records moved.
        moved: u64,
    },
    /// One ACTIVATE(w) (step 3).
    Activate {
        /// Command sequence number.
        seq: u64,
        /// The newly warned node (heap index).
        node: u64,
        /// Its initial DEST pointer.
        dest: u64,
    },
    /// A roll-back rule moved a warned node's DEST.
    Rollback {
        /// Command sequence number.
        seq: u64,
        /// The rolled-back node (heap index).
        node: u64,
        /// The pointer's new value.
        new_dest: u64,
    },
    /// A warning flag was lowered (step 2 or 4c).
    FlagLowered {
        /// Command sequence number.
        seq: u64,
        /// The node whose flag dropped (heap index).
        node: u64,
    },
    /// `dsf-durable` appended a WAL frame for the command.
    WalFrame {
        /// Command sequence number.
        seq: u64,
        /// Frame size in bytes.
        bytes: u64,
    },
    /// `dsf-durable` fsynced the log on behalf of the command.
    Fsync {
        /// Command sequence number.
        seq: u64,
        /// fsync wall time in microseconds.
        micros: u64,
    },
    /// `dsf-concurrent` waited for a shard write lock before the command.
    LockWait {
        /// Command sequence number.
        seq: u64,
        /// Shard index.
        shard: u64,
        /// Wait in microseconds.
        micros: u64,
    },
    /// A flag-stable moment snapshot (per-slot record counts — the rows of
    /// the paper's Figure 4). Only recorded when moment capture is on.
    Moment {
        /// Command sequence number.
        seq: u64,
        /// 0 = after step 3, 1 = after a step-4c sweep.
        moment: u8,
        /// Record count of every slot in address order.
        counts: Vec<u64>,
    },
    /// `dsf-pagestore` wrote back dirty pages in the background on behalf
    /// of the command that dirtied them. Recorded with an explicit seq
    /// (never the recording thread's current command): writeback happens on
    /// scheduler worker threads, long after — and far away from — the
    /// command it belongs to.
    Writeback {
        /// The command whose write dirtied the pages.
        seq: u64,
        /// Pages written back.
        pages: u64,
    },
}

const TAG_COMMAND_BEGIN: u8 = 0;
const TAG_COMMAND_END: u8 = 1;
const TAG_COMMAND_CANCEL: u8 = 2;
const TAG_ACCESS: u8 = 3;
const TAG_SHIFT: u8 = 4;
const TAG_ACTIVATE: u8 = 5;
const TAG_ROLLBACK: u8 = 6;
const TAG_FLAG_LOWERED: u8 = 7;
const TAG_WAL_FRAME: u8 = 8;
const TAG_FSYNC: u8 = 9;
const TAG_LOCK_WAIT: u8 = 10;
const TAG_MOMENT: u8 = 11;
const TAG_WRITEBACK: u8 = 12;

/// Appends `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `buf[*pos..]`, advancing `pos`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None; // over-long encoding
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

impl FlightEvent {
    /// The event's command sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            FlightEvent::CommandBegin { seq, .. }
            | FlightEvent::CommandEnd { seq, .. }
            | FlightEvent::CommandCancel { seq }
            | FlightEvent::Access { seq, .. }
            | FlightEvent::Shift { seq, .. }
            | FlightEvent::Activate { seq, .. }
            | FlightEvent::Rollback { seq, .. }
            | FlightEvent::FlagLowered { seq, .. }
            | FlightEvent::WalFrame { seq, .. }
            | FlightEvent::Fsync { seq, .. }
            | FlightEvent::LockWait { seq, .. }
            | FlightEvent::Moment { seq, .. }
            | FlightEvent::Writeback { seq, .. } => seq,
        }
    }

    /// Encodes the event as one self-delimiting frame (length prefix +
    /// tag + payload) appended to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(16);
        match self {
            FlightEvent::CommandBegin { seq, kind, target } => {
                payload.push(TAG_COMMAND_BEGIN);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, kind.code());
                put_varint(&mut payload, *target);
            }
            FlightEvent::CommandEnd {
                seq,
                accesses,
                shift_steps,
                micros,
            } => {
                payload.push(TAG_COMMAND_END);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *accesses);
                put_varint(&mut payload, *shift_steps);
                put_varint(&mut payload, *micros);
            }
            FlightEvent::CommandCancel { seq } => {
                payload.push(TAG_COMMAND_CANCEL);
                put_varint(&mut payload, *seq);
            }
            FlightEvent::Access {
                seq,
                phase,
                kind,
                pages,
            } => {
                payload.push(TAG_ACCESS);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, phase.index() as u64);
                put_varint(&mut payload, kind.code());
                put_varint(&mut payload, *pages);
            }
            FlightEvent::Shift {
                seq,
                node,
                source,
                dest,
                moved,
            } => {
                payload.push(TAG_SHIFT);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *node);
                put_varint(&mut payload, *source);
                put_varint(&mut payload, *dest);
                put_varint(&mut payload, *moved);
            }
            FlightEvent::Activate { seq, node, dest } => {
                payload.push(TAG_ACTIVATE);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *node);
                put_varint(&mut payload, *dest);
            }
            FlightEvent::Rollback {
                seq,
                node,
                new_dest,
            } => {
                payload.push(TAG_ROLLBACK);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *node);
                put_varint(&mut payload, *new_dest);
            }
            FlightEvent::FlagLowered { seq, node } => {
                payload.push(TAG_FLAG_LOWERED);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *node);
            }
            FlightEvent::WalFrame { seq, bytes } => {
                payload.push(TAG_WAL_FRAME);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *bytes);
            }
            FlightEvent::Fsync { seq, micros } => {
                payload.push(TAG_FSYNC);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *micros);
            }
            FlightEvent::LockWait { seq, shard, micros } => {
                payload.push(TAG_LOCK_WAIT);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *shard);
                put_varint(&mut payload, *micros);
            }
            FlightEvent::Moment {
                seq,
                moment,
                counts,
            } => {
                payload.push(TAG_MOMENT);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, u64::from(*moment));
                put_varint(&mut payload, counts.len() as u64);
                for &c in counts {
                    put_varint(&mut payload, c);
                }
            }
            FlightEvent::Writeback { seq, pages } => {
                payload.push(TAG_WRITEBACK);
                put_varint(&mut payload, *seq);
                put_varint(&mut payload, *pages);
            }
        }
        put_varint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
    }

    /// Decodes one frame payload (the bytes *after* the length prefix).
    pub fn decode_payload(payload: &[u8]) -> Option<FlightEvent> {
        let tag = *payload.first()?;
        let mut p = 1usize;
        let mut v = || get_varint(payload, &mut p);
        // Each arm reads its fields in encode order; trailing bytes are
        // tolerated (forward compatibility with appended fields).
        let ev = match tag {
            TAG_COMMAND_BEGIN => FlightEvent::CommandBegin {
                seq: v()?,
                kind: CommandKind::from_code(v()?)?,
                target: v()?,
            },
            TAG_COMMAND_END => FlightEvent::CommandEnd {
                seq: v()?,
                accesses: v()?,
                shift_steps: v()?,
                micros: v()?,
            },
            TAG_COMMAND_CANCEL => FlightEvent::CommandCancel { seq: v()? },
            TAG_ACCESS => FlightEvent::Access {
                seq: v()?,
                phase: Phase::from_code(v()?)?,
                kind: AccessKind::from_code(v()?)?,
                pages: v()?,
            },
            TAG_SHIFT => FlightEvent::Shift {
                seq: v()?,
                node: v()?,
                source: v()?,
                dest: v()?,
                moved: v()?,
            },
            TAG_ACTIVATE => FlightEvent::Activate {
                seq: v()?,
                node: v()?,
                dest: v()?,
            },
            TAG_ROLLBACK => FlightEvent::Rollback {
                seq: v()?,
                node: v()?,
                new_dest: v()?,
            },
            TAG_FLAG_LOWERED => FlightEvent::FlagLowered {
                seq: v()?,
                node: v()?,
            },
            TAG_WAL_FRAME => FlightEvent::WalFrame {
                seq: v()?,
                bytes: v()?,
            },
            TAG_FSYNC => FlightEvent::Fsync {
                seq: v()?,
                micros: v()?,
            },
            TAG_LOCK_WAIT => FlightEvent::LockWait {
                seq: v()?,
                shard: v()?,
                micros: v()?,
            },
            TAG_MOMENT => {
                let seq = v()?;
                let moment = u8::try_from(v()?).ok()?;
                let n = v()?;
                if n > payload.len() as u64 {
                    return None; // length field cannot exceed the frame
                }
                let mut counts = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    counts.push(v()?);
                }
                FlightEvent::Moment {
                    seq,
                    moment,
                    counts,
                }
            }
            TAG_WRITEBACK => FlightEvent::Writeback {
                seq: v()?,
                pages: v()?,
            },
            _ => return None,
        };
        Some(ev)
    }
}

/// Decodes a contiguous run of frames. Stops cleanly at a truncated tail
/// (returns what decoded so far); a corrupt payload is skipped.
pub fn decode_frames(buf: &[u8]) -> Vec<FlightEvent> {
    let mut events = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let Some(len) = get_varint(buf, &mut pos) else {
            break;
        };
        let len = len as usize;
        let Some(payload) = buf.get(pos..pos + len) else {
            break; // truncated tail
        };
        pos += len;
        if let Some(ev) = FlightEvent::decode_payload(payload) {
            events.push(ev);
        }
    }
    events
}

/// Reads exactly one varint from an `io::Read` (persist-format headers).
pub(crate) fn read_varint(r: &mut impl Read) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "over-long varint",
            ));
        }
        v |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_at_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn every_variant_roundtrips() {
        let events = vec![
            FlightEvent::CommandBegin {
                seq: 1,
                kind: CommandKind::Insert,
                target: 7,
            },
            FlightEvent::Access {
                seq: 1,
                phase: Phase::Shift,
                kind: AccessKind::Write,
                pages: 3,
            },
            FlightEvent::Shift {
                seq: 1,
                node: 15,
                source: 7,
                dest: 6,
                moved: 6,
            },
            FlightEvent::Activate {
                seq: 1,
                node: 3,
                dest: 0,
            },
            FlightEvent::Rollback {
                seq: 2,
                node: 3,
                new_dest: 0,
            },
            FlightEvent::FlagLowered { seq: 2, node: 15 },
            FlightEvent::WalFrame { seq: 2, bytes: 41 },
            FlightEvent::Fsync {
                seq: 2,
                micros: 120,
            },
            FlightEvent::LockWait {
                seq: 3,
                shard: 2,
                micros: 9,
            },
            FlightEvent::Writeback { seq: 1, pages: 4 },
            FlightEvent::Moment {
                seq: 1,
                moment: 0,
                counts: vec![16, 1, 0, 1, 9, 9, 9, 17],
            },
            FlightEvent::CommandEnd {
                seq: 1,
                accesses: 18,
                shift_steps: 3,
                micros: 44,
            },
            FlightEvent::CommandCancel { seq: 4 },
        ];
        let mut buf = Vec::new();
        for e in &events {
            e.encode(&mut buf);
        }
        assert_eq!(decode_frames(&buf), events);
    }

    #[test]
    fn truncated_tail_is_dropped_not_misparsed() {
        let mut buf = Vec::new();
        FlightEvent::CommandCancel { seq: 9 }.encode(&mut buf);
        let intact = buf.len();
        FlightEvent::CommandEnd {
            seq: 10,
            accesses: 5,
            shift_steps: 1,
            micros: 2,
        }
        .encode(&mut buf);
        buf.truncate(intact + 2); // cut the second frame mid-payload
        assert_eq!(
            decode_frames(&buf),
            vec![FlightEvent::CommandCancel { seq: 9 }]
        );
    }
}
