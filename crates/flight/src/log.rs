//! The `.flight` file: persisted flight logs.
//!
//! Layout (everything after the magic is LEB128 varints):
//!
//! ```text
//! "DSFFLT1\n"                     8-byte magic
//! version                         format version (currently 1)
//! j  k  log_slots  gap            the BoundBudget recorded at capture time
//! dropped  total                  ring counters at snapshot
//! payload_len                     encoded frame bytes that follow
//! <frames...>                     exactly payload_len bytes of frames
//! ```
//!
//! Embedding the budget means `dsf flight replay`/`explain` audit with the
//! *recording* file's configuration — no flags to mis-remember later.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::codec::{decode_frames, put_varint, read_varint, FlightEvent};
use crate::replay::{Attribution, BoundBudget};

/// 8-byte magic opening every `.flight` file.
pub const FLIGHT_MAGIC: &[u8; 8] = b"DSFFLT1\n";

/// Current format version.
pub const FLIGHT_VERSION: u64 = 1;

/// A decoded flight log: the events plus the capture-time context needed
/// to replay and audit them.
#[derive(Debug, Clone)]
pub struct FlightLog {
    /// The audit budget of the file that recorded the log.
    pub budget: BoundBudget,
    /// Events ever pushed (retained + dropped).
    pub total: u64,
    /// Events evicted by the ring's byte budget.
    pub dropped: u64,
    /// The retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightLog {
    /// Replays the log into per-command attribution.
    pub fn replay(&self) -> Attribution {
        Attribution::replay(self)
    }

    /// Serializes the log into the `.flight` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut frames = Vec::new();
        for ev in &self.events {
            ev.encode(&mut frames);
        }
        let mut out = Vec::with_capacity(frames.len() + 64);
        out.extend_from_slice(FLIGHT_MAGIC);
        put_varint(&mut out, FLIGHT_VERSION);
        put_varint(&mut out, self.budget.j);
        put_varint(&mut out, self.budget.k);
        put_varint(&mut out, self.budget.log_slots);
        put_varint(&mut out, self.budget.gap);
        put_varint(&mut out, self.dropped);
        put_varint(&mut out, self.total);
        put_varint(&mut out, frames.len() as u64);
        out.extend_from_slice(&frames);
        out
    }

    /// Writes the log to `path` (atomically enough for a tool artifact:
    /// single create + write + sync).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(&self.to_bytes())?;
        f.sync_all()
    }

    /// Parses a `.flight` byte stream.
    pub fn from_reader(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != FLIGHT_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a .flight file (bad magic)",
            ));
        }
        let version = read_varint(r)?;
        if version != FLIGHT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported .flight version {version}"),
            ));
        }
        let budget = BoundBudget {
            j: read_varint(r)?,
            k: read_varint(r)?,
            log_slots: read_varint(r)?,
            gap: read_varint(r)?,
        };
        let dropped = read_varint(r)?;
        let total = read_varint(r)?;
        let payload_len = read_varint(r)?;
        let mut frames = vec![0u8; usize::try_from(payload_len).map_err(io::Error::other)?];
        r.read_exact(&mut frames)?;
        Ok(FlightLog {
            budget,
            total,
            dropped,
            events: decode_frames(&frames),
        })
    }

    /// Loads a `.flight` file from disk.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut f = File::open(path)?;
        Self::from_reader(&mut f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CommandKind;

    #[test]
    fn flight_file_roundtrips() {
        let log = FlightLog {
            budget: BoundBudget {
                j: 3,
                k: 1,
                log_slots: 3,
                gap: 9,
            },
            total: 3,
            dropped: 1,
            events: vec![
                FlightEvent::CommandBegin {
                    seq: 2,
                    kind: CommandKind::Delete,
                    target: 4,
                },
                FlightEvent::CommandEnd {
                    seq: 2,
                    accesses: 5,
                    shift_steps: 1,
                    micros: 9,
                },
            ],
        };
        let bytes = log.to_bytes();
        let back = FlightLog::from_reader(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.budget, log.budget);
        assert_eq!(back.total, 3);
        assert_eq!(back.dropped, 1);
        assert_eq!(back.events, log.events);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = FlightLog::from_reader(&mut &b"NOTFLGHT\x01"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
