//! Choosing (d, D, J) — a walkthrough of the paper's parameter space for a
//! capacity-planning decision.
//!
//! You know roughly how many records you must hold and how big a physical
//! page is; the free choices are the slack ratio D/d (space overhead vs
//! update cost) and the shift budget J. This example sweeps both on your
//! own workload shape and prints the trade-off table, including when the
//! macro-block regime (Theorem 5.7) kicks in.
//!
//! Run: `cargo run --release --example capacity_planning`

use willard_dsf::{DenseFile, DenseFileConfig, MacroBlocking};

/// Replays a half-fill followed by an adversarial burst; returns
/// (mean, worst) page accesses per command.
fn measure(cfg: DenseFileConfig) -> (f64, u64, u32, u32) {
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).expect("valid config");
    let prefill = f.capacity() / 2;
    f.bulk_load((0..prefill).map(|i| (i << 32, i)))
        .expect("prefill fits");
    let room = (f.capacity() - f.len()) as usize;
    for (i, k) in (0..room as u64)
        .map(|i| (5u64 << 32) + room as u64 - i)
        .enumerate()
    {
        f.insert(k, i as u64).expect("fits");
    }
    f.check_invariants().expect("invariants hold");
    let s = f.op_stats();
    (
        s.mean_accesses(),
        s.max_accesses,
        f.config().j,
        f.config().k,
    )
}

fn main() {
    // Requirement: hold 16k records on pages of at most 64 records.
    const RECORDS: u64 = 16_384;
    const PAGE_CAP: u32 = 64;

    println!("Requirement: {RECORDS} records, page capacity {PAGE_CAP}.");
    println!("Sweep of the slack ratio d/D (space overhead vs update cost):\n");
    println!(
        "{:>5} {:>5} {:>7} {:>9} {:>4} {:>3} {:>7} {:>7}",
        "d", "D", "pages", "overhead", "J", "K", "mean", "worst"
    );
    for d in [8u32, 16, 32, 48, 56, 60] {
        let pages = (RECORDS as f64 / f64::from(d)).ceil() as u32;
        let cfg = DenseFileConfig::control2(pages, d, PAGE_CAP);
        let (mean, worst, j, k) = measure(cfg);
        let overhead = f64::from(PAGE_CAP) / f64::from(d);
        println!(
            "{d:>5} {PAGE_CAP:>5} {pages:>7} {overhead:>8.2}x {j:>4} {k:>3} {mean:>7.2} {worst:>7}"
        );
    }

    println!("\nA tighter file (d close to D) wastes less disk but needs macro-blocks");
    println!("(K > 1) and a bigger shift budget; a looser file updates almost for");
    println!("free. The paper's guidance: keep D−d > 3⌈log₂M⌉ if you can.\n");

    // And the J trade-off at a fixed geometry: a bigger J front-loads more
    // shifting per command (higher mean) to tighten the worst case... up to
    // the point where SELECT runs out of warned nodes and extra J is free.
    println!("J sweep at d=16, D=64, M=1024:");
    println!("{:>5} {:>8} {:>7}", "J", "mean", "worst");
    for j in [2u32, 4, 8, 16, 32, 64] {
        let cfg = DenseFileConfig::control2(1024, 16, PAGE_CAP)
            .with_j(j)
            .with_macro_blocking(MacroBlocking::Auto);
        let (mean, worst, _, _) = measure(cfg);
        println!("{j:>5} {mean:>8.2} {worst:>7}");
    }
    println!("\nSmall J risks density violations under adversarial load (see the");
    println!("exp_j_sweep experiment); the default stays a safety factor above the");
    println!("measured minimum.");
}
