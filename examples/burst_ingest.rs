//! Surviving a surge — the scenario the paper's introduction uses to
//! dismiss overflow chaining: "a large surge of insertions … attempted in a
//! relatively small portion of the sequential file".
//!
//! A sensor archive keyed by `(sensor-id, timestamp)` receives a flood of
//! readings from one sensor (a stuck alarm). The dense file absorbs the
//! surge with bounded per-insert cost and keeps scans sequential; the same
//! surge applied to an ISAM-style overflow file grows chains without bound.
//!
//! Run: `cargo run --release --example burst_ingest`

use willard_dsf::{
    Command, DenseFile, DenseFileConfig, DiskModel, DurableFile, OverflowFile, SyncPolicy,
};

fn reading_key(sensor: u32, ts: u32) -> u64 {
    (u64::from(sensor) << 32) | u64::from(ts)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut archive: DenseFile<u64, i32> = DenseFile::new(DenseFileConfig::control2(1024, 8, 40))?;
    // 64 sensors × 60 readings of steady history.
    let history: Vec<(u64, i32)> = (0..64u32)
        .flat_map(|s| (0..60u32).map(move |t| (reading_key(s, t * 60), (s + t) as i32)))
        .collect();
    archive.bulk_load(history.iter().copied())?;

    // The classical alternative, provisioned for the same data at ~2/3 fill.
    let pages = (history.len() as u32).div_ceil(26);
    let mut isam: OverflowFile<u64, i32> = OverflowFile::new(pages, 40);
    isam.organize(history.iter().copied(), 26);

    println!("steady state: {} readings from 64 sensors\n", archive.len());

    // Sensor 17 goes haywire: 4000 readings in one burst — while the other
    // 63 sensors keep reporting normally, so everyone's overflow pages
    // interleave in the shared overflow area. The collector hands the
    // archive whole batches of 64; `apply_batch` plans the batch's slot
    // walks once but still pays (and bounds) every command individually.
    let mut surge: Vec<Command<u64, i32>> = Vec::new();
    for t in 0..2900u32 {
        let k = reading_key(17, 3600 + t);
        surge.push(Command::Insert(k, -1));
        if t % 2 == 0 {
            let other = reading_key((t / 2) % 64, 3600 + t);
            if other != k {
                surge.push(Command::Insert(other, 0));
            }
        }
    }
    for batch in surge.chunks(64) {
        for outcome in archive.apply_batch(batch) {
            assert!(outcome.is_effective(), "fresh readings must land");
        }
        for cmd in batch {
            if let Command::Insert(k, v) = cmd {
                isam.insert(*k, *v);
            }
        }
    }
    let worst = archive.op_stats().max_accesses;
    println!(
        "surge of {} readings into sensor 17 (plus background traffic), batched 64 at a time:",
        surge.len()
    );
    println!(
        "  dense file worst insert: {worst} page accesses (J = {})",
        archive.config().j
    );
    let ostats = isam.overflow_stats();
    println!(
        "  overflow file grew {} chain pages (longest chain: {} pages)",
        ostats.overflow_pages, ostats.longest_chain
    );

    // Now the ops team pulls sensor 17's trace for the last hour — a stream.
    let disk = DiskModel::modern_hdd();
    let (lo, hi) = (reading_key(17, 0), reading_key(18, 0));

    archive.io_trace().set_enabled(true);
    let n_dense = archive.range(lo..hi).count();
    let dense_ms = disk.replay_ms(&archive.io_trace().take());
    archive.io_trace().set_enabled(false);

    isam.trace().set_enabled(true);
    let mut n_isam = 0;
    isam.scan_from(&lo, usize::MAX, |k, _| {
        if *k < hi {
            n_isam += 1;
        }
    });
    let isam_ms = disk.replay_ms(&isam.trace().take());
    isam.trace().set_enabled(false);

    println!("\nretrieving sensor 17's {} readings:", n_dense);
    println!("  dense file: {dense_ms:.1} ms (physically sequential)");
    println!("  overflow:   {isam_ms:.1} ms ({n_isam} readings; a seek per chain page)");

    // Density maintenance means the archive keeps absorbing surges forever;
    // the overflow file can only recover by a full reorganization — and the
    // surge has outgrown its primary area entirely, so even that needs a
    // reallocation first.
    archive
        .check_invariants()
        .expect("dense file invariants hold after the surge");
    println!("\ndense file invariants hold after the surge ✓");
    let needed = isam.len().div_ceil(26);
    println!(
        "overflow file recovery: {} records no longer fit its {} primary pages;",
        isam.len(),
        pages
    );
    println!("a reorganization must first reallocate to ≥ {needed} pages — the full");
    println!("O(M) rebuild the paper set out to avoid.");

    // A crash-safe collector would also journal the surge. Per-reading
    // fsyncs are what make `EveryCommand` unaffordable at burst rates;
    // `apply_batch`'s group commit keeps the guarantee at 1/64th the cost.
    // Measured live from the telemetry spine:
    let reg = willard_dsf::telemetry::global();
    reg.enable();
    let fsyncs = reg.counter("dsf_wal_fsyncs_total", "WAL sync_data calls");
    let scratch = std::env::temp_dir().join(format!("dsf-burst-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();
    let sample = &surge[..512];
    let durable_cfg = DenseFileConfig::control2(256, 8, 40);

    let mut one: DurableFile<u64, i32> =
        DurableFile::create(scratch.join("one"), durable_cfg, SyncPolicy::EveryCommand)?;
    let before = fsyncs.get();
    for cmd in sample {
        if let Command::Insert(k, v) = cmd {
            one.insert(*k, *v)?;
        }
    }
    let one_fsyncs = fsyncs.get() - before;

    let mut grouped: DurableFile<u64, i32> = DurableFile::create(
        scratch.join("grouped"),
        durable_cfg,
        SyncPolicy::EveryCommand,
    )?;
    let before = fsyncs.get();
    for batch in sample.chunks(64) {
        grouped.apply_batch(batch)?;
    }
    let grouped_fsyncs = fsyncs.get() - before;
    reg.disable();
    assert!(
        one.iter().eq(grouped.iter()),
        "group commit changed nothing"
    );
    std::fs::remove_dir_all(&scratch).ok();

    println!(
        "\njournaling the first {} surge readings durably:",
        sample.len()
    );
    println!("  one fsync per reading:  {one_fsyncs} fsyncs");
    println!(
        "  group commit (batch 64): {grouped_fsyncs} fsyncs ({:.0}× fewer, same acknowledged state)",
        one_fsyncs as f64 / grouped_fsyncs as f64
    );
    Ok(())
}
