//! Quickstart: create a dense sequential file, load it, update it, stream
//! it, and look at what the maintenance machinery did.
//!
//! Run: `cargo run --example quickstart`

use willard_dsf::{DenseFile, DenseFileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A file of M = 256 pages, holding at most d·M = 8·256 = 2048 records,
    // with at most D = 40 records on any page. CONTROL 2 gives every insert
    // and delete a worst-case page-access bound of O(log²M / (D−d)).
    let config = DenseFileConfig::control2(256, 8, 40);
    let mut file: DenseFile<u64, String> = DenseFile::new(config)?;

    println!(
        "capacity: {} records over {} pages",
        file.capacity(),
        file.config().physical_pages
    );
    println!("shift budget J = {} per command\n", file.config().j);

    // Bulk-load half the capacity with evenly spread keys — the uniform
    // initial distribution the paper's Theorem 5.5 starts from.
    file.bulk_load((0..1024u64).map(|k| (k * 1000, format!("row-{k}"))))?;

    // Ordinary updates.
    file.insert(500_500, "late arrival".into())?;
    file.insert(500_501, "another".into())?;
    assert_eq!(file.remove(&1000), Some("row-1".into()));
    assert!(file.get(&500_500).is_some());

    // Stream retrieval — the reason dense sequential files exist. The range
    // scan walks physically consecutive pages.
    let stream: Vec<u64> = file.range(500_000..=510_000).map(|(k, _)| *k).collect();
    println!(
        "stream 500k..=510k -> {} records: {:?} ...",
        stream.len(),
        &stream[..4.min(stream.len())]
    );

    // Costs are measured in the paper's unit: page accesses.
    let stats = file.op_stats();
    println!("\ncommands executed:   {}", stats.commands);
    println!("mean page accesses:  {:.2}", stats.mean_accesses());
    println!(
        "worst page accesses: {} (bounded by the J-shift budget)",
        stats.max_accesses
    );
    println!("records shifted:     {}", stats.records_shifted);

    // The full invariant checker: sortedness, page capacities, BALANCE(d,D),
    // counter consistency, warning-flag legality.
    file.check_invariants()
        .expect("every paper invariant holds");
    println!("\nall invariants hold ✓");
    Ok(())
}
