//! Batch reporting over an order ledger — the workload Wiederhold (and the
//! paper's introduction) motivates dense sequential files with: most of the
//! read traffic is *streams* of records with nearby keys, so keeping the
//! ledger physically sorted pays for itself.
//!
//! The example keeps orders keyed by `(day, sequence-number)` packed into a
//! `u64`, takes daily updates (new orders, cancellations), and runs
//! end-of-day reports as range scans. A B+-tree with identical content is
//! maintained alongside; the rotational-disk model prices both report runs.
//!
//! Run: `cargo run --release --example batch_reporting`

use willard_dsf::{BPlusTree, BTreeConfig, DenseFile, DenseFileConfig, DiskModel};

fn order_key(day: u32, seq: u32) -> u64 {
    (u64::from(day) << 32) | u64::from(seq)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ledger: DenseFile<u64, f64> = DenseFile::new(DenseFileConfig::control2(2048, 16, 64))?;
    let mut index: BPlusTree<u64, f64> = BPlusTree::new(BTreeConfig::with_page_capacity(64))?;

    // Thirty days of history: ~600 orders a day with gaps from cancellations.
    let history: Vec<(u64, f64)> = (0..30u32)
        .flat_map(|day| {
            (0..600u32)
                .filter(move |s| (s * 7 + day) % 11 != 0)
                .map(move |s| (order_key(day, s * 3), f64::from(day * 1000 + s) * 0.25))
        })
        .collect();
    ledger.bulk_load(history.iter().copied())?;
    index.bulk_load(history.iter().copied())?;
    println!("loaded {} historical orders", ledger.len());

    // A month of operations: every day brings late corrections spread over
    // the whole history (what ages a B-tree: scattered splits), then day 30
    // arrives as a burst, and stale day-5 orders are cancelled.
    for day in 0..30u32 {
        for s in 0..120u32 {
            let k = order_key(day, s * 15 + 1); // odd sequence numbers: new keys
            ledger.insert(k, 0.5)?;
            index.insert(k, 0.5);
        }
    }
    for s in 0..900u32 {
        let k = order_key(30, s * 2);
        ledger.insert(k, f64::from(s))?;
        index.insert(k, f64::from(s));
    }
    let mut cancelled = 0;
    for s in 0..600u32 {
        let k = order_key(5, s * 3);
        if ledger.remove(&k).is_some() {
            index.remove(&k);
            cancelled += 1;
        }
    }
    println!(
        "applied 30 days of corrections, ingested day 30 (900 orders), cancelled {cancelled} stale orders"
    );
    println!(
        "worst single update: {} page accesses (mean {:.2})",
        ledger.op_stats().max_accesses,
        ledger.op_stats().mean_accesses()
    );

    // End-of-day reporting: total value per day for the last week, as range
    // scans. Price the same report against the B+-tree with the disk model.
    let disk = DiskModel::ibm3380_class();
    let mut ledger_ms = 0.0;
    let mut index_ms = 0.0;
    println!("\n day    orders      total   ledger-ms   btree-ms");
    for day in 24..=30u32 {
        let (lo, hi) = (order_key(day, 0), order_key(day + 1, 0));

        ledger.io_trace().set_enabled(true);
        let (mut n, mut total) = (0u32, 0.0);
        for (_, v) in ledger.range(lo..hi) {
            n += 1;
            total += v;
        }
        let lms = disk.replay_ms(&ledger.io_trace().take());
        ledger.io_trace().set_enabled(false);

        index.trace().set_enabled(true);
        let mut n2 = 0u32;
        index.scan(
            std::ops::Bound::Included(lo),
            std::ops::Bound::Excluded(hi),
            |_, _| n2 += 1,
        );
        let bms = disk.replay_ms(&index.trace().take());
        index.trace().set_enabled(false);

        assert_eq!(n, n2, "both structures agree on day {day}");
        ledger_ms += lms;
        index_ms += bms;
        println!("  {day:2}  {n:8}  {total:9.1}  {lms:10.1}  {bms:9.1}");
    }
    println!(
        "\nweekly report total: ledger {ledger_ms:.0} ms vs B+-tree {index_ms:.0} ms ({:.1}x)",
        index_ms / ledger_ms
    );

    ledger.check_invariants().expect("ledger invariants hold");
    Ok(())
}
