//! Percentile analytics on a latency ledger — the order-statistic queries
//! the calibrator's rank counters provide for free.
//!
//! A latency-measurement service stores samples keyed by
//! `(latency-in-µs, sequence)` so the file's key order *is* the latency
//! order. Percentiles become `select_nth`, SLO counts become
//! `count_range`, and trimming outliers becomes `retain` — all without a
//! separate index.
//!
//! Run: `cargo run --release --example order_statistics`

use willard_dsf::{DenseFile, DenseFileConfig};

fn sample_key(latency_us: u32, seq: u32) -> u64 {
    (u64::from(latency_us) << 32) | u64::from(seq)
}

fn latency_of(key: u64) -> u32 {
    (key >> 32) as u32
}

/// A deterministic long-tailed latency generator (mixture of a tight mode
/// and a heavy tail).
fn synth_latency(i: u32) -> u32 {
    let base = 800 + (i * 37) % 400; // 0.8–1.2 ms mode
    if i.is_multiple_of(97) {
        base + 20_000 + (i * 211) % 80_000 // tail: 20–100 ms
    } else if i.is_multiple_of(13) {
        base + 2_000 + (i * 131) % 6_000 // shoulder: 2.8–9 ms
    } else {
        base
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ledger: DenseFile<u64, u32> = DenseFile::new(DenseFileConfig::control2(1024, 16, 64))?;

    for i in 0..10_000u32 {
        ledger.insert(sample_key(synth_latency(i), i), i)?;
    }
    println!("stored {} latency samples\n", ledger.len());

    // Percentiles: one select_nth each (one page read; the tree walk is free).
    let n = ledger.len();
    println!("percentiles (µs):");
    for (label, q) in [
        ("p50", 0.50),
        ("p90", 0.90),
        ("p99", 0.99),
        ("p99.9", 0.999),
    ] {
        let rank = ((n - 1) as f64 * q) as u64;
        let (k, _) = ledger.select_nth(rank).expect("rank in range");
        println!("  {label:>6}: {:>8}", latency_of(*k));
    }
    let (worst, _) = ledger.last().expect("non-empty");
    println!("  {:>6}: {:>8}", "max", latency_of(*worst));

    // SLO accounting: how many samples beat 2 ms? Two probes, any size.
    let under = ledger.count_range(..sample_key(2_000, 0));
    println!(
        "\nSLO: {under} of {n} samples under 2 ms ({:.2}%)",
        under as f64 * 100.0 / n as f64
    );

    // The slowest five requests, by reverse stream.
    println!("\nslowest five (latency µs, sequence):");
    for (k, seq) in ledger.iter_rev().take(5) {
        println!("  {:>8}  #{seq}", latency_of(*k));
    }

    // Trim the tail above 50 ms in one offline pass and re-check the max.
    let removed = ledger.retain(|k, _| latency_of(*k) <= 50_000);
    let (worst, _) = ledger.last().expect("non-empty");
    println!(
        "\ntrimmed {removed} outliers above 50 ms; new max {} µs across {} samples",
        latency_of(*worst),
        ledger.len()
    );

    ledger.check_invariants().expect("invariants hold");
    Ok(())
}
