//! A crash-safe metering service — the dense file as the storage engine of
//! a small real system, combining the durability layer (checkpoints + WAL)
//! with the ordered queries the calibrator gives for free.
//!
//! The service ingests usage events keyed by `(timestamp-bucket, meter)`
//! packed into a `u64`, survives a simulated crash mid-ingest (torn WAL
//! tail), recovers, and then answers billing queries: per-window streams,
//! percentile cut-offs via `rank`/`select_nth`, and priority-queue-style
//! expiry with `pop_first`.
//!
//! This example embeds the engine in-process. To put the same durable
//! store on a TCP socket — concurrent clients coalesced into group
//! commits, per-request Strict/Relaxed durability-on-ack — use the
//! network front-end instead: `cargo run --release --bin dsf -- serve
//! ./store` and talk to it with `dsf client` (see `crates/server`).
//!
//! Run: `cargo run --release --example durable_service`

use willard_dsf::core_::{Command, DenseFileConfig};
use willard_dsf::durable::{DurableFile, SyncPolicy};

fn event_key(minute: u32, meter: u32) -> u64 {
    (u64::from(minute) << 32) | u64::from(meter)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("dsf-metering-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Phase 1: normal operation. Each minute's 20 meter readings arrive as
    // one batch; `apply_batch` appends all 20 WAL frames and (under
    // `EveryCommand`) would fsync the group once.
    let cfg = DenseFileConfig::control2(512, 8, 40);
    let mut svc: DurableFile<u64, u64> = DurableFile::create(&dir, cfg, SyncPolicy::Manual)?;
    for minute in 0..60u32 {
        let batch: Vec<Command<u64, u64>> = (0..20u32)
            .map(|meter| Command::Insert(event_key(minute, meter), u64::from(minute * 7 + meter)))
            .collect();
        svc.apply_batch(&batch)?;
    }
    svc.checkpoint()?; // durable cut: 1200 events
    println!(
        "ingested 60 minutes × 20 meters, checkpointed at {} events",
        svc.len()
    );

    // Phase 2: more ingest, synced to the log but not checkpointed...
    for minute in 60..90u32 {
        let batch: Vec<Command<u64, u64>> = (0..20u32)
            .map(|meter| Command::Insert(event_key(minute, meter), u64::from(minute)))
            .collect();
        svc.apply_batch(&batch)?;
    }
    svc.sync()?;
    // ...and a little more that will be torn off by the crash.
    svc.insert(event_key(90, 0), 1)?;
    svc.insert(event_key(90, 1), 2)?;
    let len_before_crash = svc.len();
    drop(svc); // simulate losing the process

    // Simulate the crash harder: tear the last few bytes off the WAL, as a
    // power cut mid-append would.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal)?;
    std::fs::write(&wal, &bytes[..bytes.len() - 5])?;

    // Phase 3: recovery.
    let mut svc: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual)?;
    println!(
        "recovered {} of {} events ({} commands replayed from the log; the torn tail was discarded)",
        svc.len(),
        len_before_crash,
        svc.commands_since_checkpoint()
    );
    svc.check_invariants()
        .expect("all paper invariants hold after recovery");

    // Phase 4: billing queries on the recovered state.
    // 4a. Stream one minute's events (physically sequential).
    let window: Vec<u64> = svc
        .range(event_key(30, 0)..event_key(31, 0))
        .map(|(_, v)| *v)
        .collect();
    println!(
        "minute 30 stream: {} events, total usage {}",
        window.len(),
        window.iter().sum::<u64>()
    );

    // 4b. How many events fall in the first half hour? Two probes, any size.
    let n = svc.count_range(event_key(0, 0)..event_key(30, 0));
    println!("first half hour holds {n} events (answered from rank counters)");

    // 4c. The median event by key order.
    let (mk, _) = svc.select_nth(svc.len() / 2).expect("non-empty");
    println!(
        "median event key: minute {}, meter {}",
        mk >> 32,
        mk & 0xffff_ffff
    );

    // 4d. Expire the oldest 100 events, durably — one batched delete.
    let expired: Vec<Command<u64, u64>> = svc
        .iter()
        .take(100)
        .map(|(k, _)| Command::Remove(*k))
        .collect();
    for outcome in svc.apply_batch(&expired)? {
        assert!(outcome.is_effective(), "expiry keys were just read");
    }
    svc.checkpoint()?;
    println!(
        "expired the 100 oldest events; {} remain (checkpointed)",
        svc.len()
    );

    // Phase 5: reopen once more to prove the expiry survived.
    drop(svc);
    let svc: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual)?;
    assert_eq!(svc.first().map(|(k, _)| *k >> 32), Some(5));
    println!(
        "reopened: oldest remaining minute is {}",
        svc.first().map(|(k, _)| *k >> 32).unwrap()
    );

    // Phase 6: why the batches matter under the strict policy. The same
    // 100 events, journaled with `SyncPolicy::EveryCommand` — first one
    // fsync per event, then as five group commits of 20. Counted live from
    // the telemetry spine, not estimated.
    let reg = willard_dsf::telemetry::global();
    reg.enable();
    let fsyncs = reg.counter("dsf_wal_fsyncs_total", "WAL sync_data calls");
    let demo_cfg = DenseFileConfig::control2(64, 8, 40);

    let mut strict: DurableFile<u64, u64> =
        DurableFile::create(dir.join("strict-one"), demo_cfg, SyncPolicy::EveryCommand)?;
    let before = fsyncs.get();
    for minute in 0..5u32 {
        for meter in 0..20u32 {
            strict.insert(event_key(minute, meter), 1)?;
        }
    }
    let per_event = fsyncs.get() - before;

    let mut strict: DurableFile<u64, u64> =
        DurableFile::create(dir.join("strict-batch"), demo_cfg, SyncPolicy::EveryCommand)?;
    let before = fsyncs.get();
    for minute in 0..5u32 {
        let batch: Vec<Command<u64, u64>> = (0..20u32)
            .map(|meter| Command::Insert(event_key(minute, meter), 1))
            .collect();
        strict.apply_batch(&batch)?;
    }
    let per_batch = fsyncs.get() - before;
    reg.disable();
    println!("journaling 100 events under EveryCommand:");
    println!("  one at a time: {per_event} fsyncs");
    println!("  batches of 20: {per_batch} fsyncs (same durability acknowledgement per batch)");

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
