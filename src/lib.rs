//! # willard-dsf — dense sequential files with good worst-case maintenance
//!
//! A comprehensive Rust reproduction of
//!
//! > Dan E. Willard, *Good Worst-Case Algorithms for Inserting and Deleting
//! > Records in Dense Sequential Files*, SIGMOD 1986.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core_`] — the paper's contribution: the [`DenseFile`] maintained by
//!   CONTROL 1 (amortized) or
//!   CONTROL 2 (worst-case `O(log²M/(D−d))` page accesses per command),
//!   including the macro-block regime of Theorem 5.7.
//! * [`pagestore`] — the shared paged-storage substrate with page-access
//!   accounting and the rotational-disk cost model.
//! * [`btree`] — a B+-tree over the same substrate (the paper's comparator).
//! * [`baselines`] — the classical alternatives: naive sequential file,
//!   ISAM-style overflow chaining, and an amortized PMA.
//! * [`workloads`] — deterministic workload generators (uniform, burst,
//!   hammer, hotspot, mixed).
//! * [`concurrent`] — a range-sharded concurrent wrapper
//!   ([`ShardedFile`]): per-stripe dense files behind reader-writer locks,
//!   preserving the per-command bound per stripe.
//! * [`durable`] — crash safety ([`DurableFile`]): checkpoints plus a
//!   CRC-framed write-ahead log with torn-tail recovery.
//! * [`telemetry`] — the observability spine: a process-wide registry of
//!   counters/gauges/histograms every layer records into (disabled by
//!   default; zero-allocation, single-branch when off), per-command spans,
//!   and Prometheus/JSON exporters behind `dsf serve-metrics` and
//!   `dsf top`. See `docs/OBSERVABILITY.md` for the metric catalogue.
//! * [`flight`] — the flight recorder: a bounded binary event ring in
//!   which every layer records under one per-command sequence number,
//!   replayable into causal cost attribution (user step vs SHIFT vs
//!   ACTIVATE vs WAL) audited against the paper's worst-case bound. Behind
//!   `dsf flight record`/`replay`/`explain`.
//! * [`server`] — the pipelined TCP front-end (`dsf serve`/`dsf client`):
//!   a length-prefixed binary protocol whose per-shard request
//!   accumulator coalesces concurrent clients into the group commits the
//!   layers above make cheap, with per-request durability-on-ack.
//!
//! The most common types are re-exported at the crate root; see the
//! `examples/` directory for runnable walkthroughs and `crates/bench` for
//! the harness that regenerates every figure and claim of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dsf_baselines as baselines;
pub use dsf_btree as btree;
pub use dsf_concurrent as concurrent;
pub use dsf_core as core_;
pub use dsf_durable as durable;
pub use dsf_flight as flight;
pub use dsf_pagestore as pagestore;
pub use dsf_server as server;
pub use dsf_telemetry as telemetry;
pub use dsf_workloads as workloads;

pub use dsf_baselines::{AmortizedPma, NaiveSequentialFile, OverflowFile, PmaConfig};
pub use dsf_btree::{BPlusTree, BTreeConfig};
pub use dsf_concurrent::ShardedFile;
pub use dsf_core::{
    Algorithm, Command, CommandOutcome, DenseFile, DenseFileConfig, DsfError, InvariantViolation,
    MacroBlocking,
};
pub use dsf_durable::{Durability, DurableFile, SyncPolicy};
pub use dsf_pagestore::{disk::DiskModel, IoStats, Record};
pub use dsf_server::{KvService, Server, ServerConfig};
