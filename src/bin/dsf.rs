//! `dsf` — a command-line tool for dense sequential files.
//!
//! Files live on disk in the checksummed snapshot format of
//! `dsf_core::snapshot` (keys are `u64`, values UTF-8 strings). Every
//! mutating command loads the snapshot, applies the operation through the
//! full CONTROL 1/2 machinery, re-verifies the paper's invariants, and
//! writes the snapshot back.
//!
//! ```text
//! dsf create ledger.dsf --pages 1024 --min-density 8 --max-density 40
//! dsf insert ledger.dsf 42 "first record"
//! dsf load   ledger.dsf rows.csv          # lines of key,value
//! dsf get    ledger.dsf 42
//! dsf scan   ledger.dsf --from 0 --limit 20 [--rev]
//! dsf remove ledger.dsf 42
//! dsf stats  ledger.dsf
//! dsf verify ledger.dsf
//! dsf bench  ledger.dsf --workload hammer --ops 1000
//! dsf gen-trace ops.trace --workload uniform --ops 5000
//! dsf replay ledger.dsf ops.trace
//! dsf image-export ledger.dsf ledger.img --page-bytes 4096
//! dsf image-stream ledger.img --from 0 --to 99999
//! dsf top ledger.dsf --workload uniform --ops 2000
//! dsf serve-metrics ledger.dsf --port 9184 --workload hammer --ops 1000
//! dsf flight record run.flight --example52
//! dsf flight replay run.flight
//! dsf flight explain run.flight --top 3
//! dsf bench-gate BENCH_telemetry.json fresh.json --threshold 0.15
//! ```

use std::fs::File;
use std::process::ExitCode;

use willard_dsf::{Algorithm, DenseFile, DenseFileConfig};

type Ledger = DenseFile<u64, String>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  dsf create <path> --pages M --min-density d --max-density D [--control1] [--j J]
  dsf insert <path> <key> <value>
  dsf remove <path> <key>
  dsf get    <path> <key>
  dsf load   <path> <csv-path>
  dsf scan   <path> [--from KEY] [--limit N] [--rev]
  dsf rank   <path> <key>
  dsf stats  <path>
  dsf verify <path>
  dsf bench  <path> --workload uniform|burst|hammer [--ops N]   (does not modify <path>)
  dsf gen-trace <trace-path> --workload uniform|burst|hammer|mixed [--ops N] [--seed S]
  dsf replay <path> <trace-path> [--dry-run]
  dsf image-export <path> <image-path> [--page-bytes N]
  dsf image-stream <image-path> [--from KEY] [--to KEY]   (reads straight off disk)
  dsf top <path> [--workload uniform|burst|hammer] [--ops N]   (in-memory; live metric table)
  dsf serve <dir> [--addr A] [--shards N] [--pages M] [--min-density d] [--max-density D]
      [--window-frames F] [--window-micros U] [--batch-window B] | dsf serve --memory [...]
      pipelined TCP front-end; concurrent clients coalesce into group commits.
      <dir> holds one WAL-backed shard per subdirectory (created on first run);
      --memory serves a ShardedFile instead. Stop it with `dsf client A shutdown`.
  dsf client <addr> ping|count|flush|shutdown
  dsf client <addr> insert <key> <value> [--relaxed]   (--relaxed acks before fsync)
  dsf client <addr> remove <key> [--relaxed]
  dsf client <addr> get <key>
  dsf client <addr> scan [--from KEY] [--limit N]
  dsf serve-metrics <path> [--port P] [--workload W] [--ops N] [--oneshot [--requests R]]
      serves /metrics (Prometheus), /json, /spans over HTTP (in-memory; never saves)
  dsf flight record <out.flight> (--example52 | [--pages M] [--min-density d] [--max-density D]
      [--j J] [--workload W] [--ops N]) [--moments]   (records a fresh in-memory run)
  dsf flight replay <file.flight>    (per-command attribution + bound audit summary)
  dsf flight explain <file.flight> [--top K] [--seq N]
      worst-K table + causal trace of the arg-max command; --seq adds the
      Figure-4-style per-moment table for one command
  dsf bench-gate <baseline.json> <candidate.json> [--threshold T] [--report path]
      fails (exit 1) when a gated metric (io/fsync/wall ratios, p99_speedup,
      overhead_ratio, max_accesses) regresses > T (default 0.15); any
      max_accesses_<scenario> key in the baseline gates at 0% slack
      (deterministic worst-case streams — an increase of 1 page fails)";

fn run(args: &[String]) -> Result<String, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "create" => create(&args[1..]),
        "insert" => insert(&args[1..]),
        "remove" => remove(&args[1..]),
        "get" => get(&args[1..]),
        "load" => load_csv(&args[1..]),
        "scan" => scan(&args[1..]),
        "rank" => rank(&args[1..]),
        "stats" => stats(&args[1..]),
        "verify" => verify(&args[1..]),
        "bench" => bench(&args[1..]),
        "gen-trace" => gen_trace(&args[1..]),
        "replay" => replay(&args[1..]),
        "image-export" => image_export(&args[1..]),
        "image-stream" => image_stream(&args[1..]),
        "top" => top(&args[1..]),
        "serve" => serve(&args[1..]),
        "client" => client(&args[1..]),
        "serve-metrics" => serve_metrics(&args[1..]),
        "flight" => flight(&args[1..]),
        "bench-gate" => bench_gate(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Parses `--flag value` pairs after the positional arguments.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn open(path: &str) -> Result<Ledger, String> {
    let mut file = File::open(path).map_err(|e| format!("cannot open `{path}`: {e}"))?;
    DenseFile::read_snapshot(&mut file).map_err(|e| format!("cannot load `{path}`: {e}"))
}

fn save(ledger: &Ledger, path: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    let write = || -> Result<(), String> {
        let mut file = File::create(&tmp).map_err(|e| format!("cannot write `{tmp}`: {e}"))?;
        ledger
            .write_snapshot(&mut file)
            .map_err(|e| format!("cannot save: {e}"))?;
        file.sync_all()
            .map_err(|e| format!("cannot sync `{tmp}`: {e}"))?;
        Ok(())
    };
    if let Err(e) = write() {
        std::fs::remove_file(&tmp).ok(); // never leave a partial temp behind
        return Err(e);
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot replace `{path}`: {e}"))?;
    Ok(())
}

fn create(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("create: missing <path>")?;
    if std::path::Path::new(path).exists() {
        return Err(format!(
            "`{path}` already exists; refusing to overwrite (delete it first if you mean it)"
        ));
    }
    let pages: u32 = parse(
        &flag(args, "--pages").ok_or("create: missing --pages")?,
        "--pages",
    )?;
    let d: u32 = parse(
        &flag(args, "--min-density").ok_or("create: missing --min-density")?,
        "--min-density",
    )?;
    let big_d: u32 = parse(
        &flag(args, "--max-density").ok_or("create: missing --max-density")?,
        "--max-density",
    )?;
    let mut config = if has_flag(args, "--control1") {
        DenseFileConfig::control1(pages, d, big_d)
    } else {
        DenseFileConfig::control2(pages, d, big_d)
    };
    if let Some(j) = flag(args, "--j") {
        config = config.with_j(parse(&j, "--j")?);
    }
    let ledger: Ledger = DenseFile::new(config).map_err(|e| e.to_string())?;
    save(&ledger, path)?;
    let cfg = ledger.config();
    Ok(format!(
        "created `{path}`: {} slots × K={} pages, capacity {} records, J={}\n",
        cfg.slots,
        cfg.k,
        ledger.capacity(),
        cfg.j
    ))
}

fn insert(args: &[String]) -> Result<String, String> {
    let [path, key, value] = args else {
        return Err("insert: expected <path> <key> <value>".into());
    };
    let mut ledger = open(path)?;
    let key: u64 = parse(key, "key")?;
    let old = ledger
        .insert(key, value.clone())
        .map_err(|e| e.to_string())?;
    save(&ledger, path)?;
    Ok(match old {
        Some(v) => format!("replaced {key} (was: {v})\n"),
        None => format!(
            "inserted {key} ({} page accesses)\n",
            ledger.op_stats().last_accesses
        ),
    })
}

fn remove(args: &[String]) -> Result<String, String> {
    let [path, key] = args else {
        return Err("remove: expected <path> <key>".into());
    };
    let mut ledger = open(path)?;
    let key: u64 = parse(key, "key")?;
    let old = ledger.remove(&key);
    save(&ledger, path)?;
    Ok(match old {
        Some(v) => format!("removed {key} (was: {v})\n"),
        None => format!("{key} not found\n"),
    })
}

fn get(args: &[String]) -> Result<String, String> {
    let [path, key] = args else {
        return Err("get: expected <path> <key>".into());
    };
    let ledger = open(path)?;
    let key: u64 = parse(key, "key")?;
    Ok(match ledger.get(&key) {
        Some(v) => format!("{v}\n"),
        None => format!("{key} not found\n"),
    })
}

fn load_csv(args: &[String]) -> Result<String, String> {
    let [path, csv] = args else {
        return Err("load: expected <path> <csv-path>".into());
    };
    let mut ledger = open(path)?;
    let text = std::fs::read_to_string(csv).map_err(|e| format!("cannot read `{csv}`: {e}"))?;
    let mut inserted = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line
            .split_once(',')
            .ok_or_else(|| format!("{csv}:{}: expected `key,value`", lineno + 1))?;
        let key: u64 = parse(k.trim(), "key")?;
        ledger
            .insert(key, v.trim().to_string())
            .map_err(|e| format!("{csv}:{}: {e}", lineno + 1))?;
        inserted += 1;
    }
    save(&ledger, path)?;
    Ok(format!(
        "loaded {inserted} records; file now holds {} of {} (worst command: {} page accesses)\n",
        ledger.len(),
        ledger.capacity(),
        ledger.op_stats().max_accesses
    ))
}

fn scan(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("scan: missing <path>")?;
    let ledger = open(path)?;
    let rev = has_flag(args, "--rev");
    let from: u64 = match flag(args, "--from") {
        Some(s) => parse(&s, "--from")?,
        // Forward scans start at the low end; reverse scans at the top.
        None => {
            if rev {
                u64::MAX
            } else {
                0
            }
        }
    };
    let limit: usize = match flag(args, "--limit") {
        Some(s) => parse(&s, "--limit")?,
        None => 50,
    };
    let mut out = String::new();
    if rev {
        for (k, v) in ledger.range_rev(..=from).take(limit) {
            out.push_str(&format!("{k},{v}\n"));
        }
    } else {
        for (k, v) in ledger.range(from..).take(limit) {
            out.push_str(&format!("{k},{v}\n"));
        }
    }
    Ok(out)
}

fn rank(args: &[String]) -> Result<String, String> {
    let [path, key] = args else {
        return Err("rank: expected <path> <key>".into());
    };
    let ledger = open(path)?;
    let key: u64 = parse(key, "key")?;
    Ok(format!("{}\n", ledger.rank(&key)))
}

fn stats(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("stats: missing <path>")?;
    let ledger = open(path)?;
    let cfg = ledger.config();
    let alg = match cfg.algorithm {
        Algorithm::Control1 => "CONTROL 1 (amortized)",
        Algorithm::Control2 => "CONTROL 2 (worst-case)",
    };
    let fill = if ledger.capacity() == 0 {
        0.0
    } else {
        ledger.len() as f64 / ledger.capacity() as f64 * 100.0
    };
    Ok(format!(
        "path:        {path}\n\
         algorithm:   {alg}\n\
         geometry:    {} slots × K={} pages of {} records (requested M={})\n\
         densities:   d#={} D#={} (L={}, gap assumption: {})\n\
         shift budget J={}\n\
         records:     {} of {} ({fill:.1}% full)\n",
        cfg.slots,
        cfg.k,
        cfg.page_capacity,
        cfg.requested_pages,
        cfg.slot_min,
        cfg.slot_max,
        cfg.log_slots,
        cfg.meets_gap_assumption,
        cfg.j,
        ledger.len(),
        ledger.capacity(),
    ))
}

fn bench(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("bench: missing <path>")?;
    let mut ledger = open(path)?; // benched in memory; never saved back
    let workload = flag(args, "--workload").ok_or("bench: missing --workload")?;
    let ops: usize = match flag(args, "--ops") {
        Some(s) => parse(&s, "--ops")?,
        None => 1000,
    };
    let room = (ledger.capacity() - ledger.len()) as usize;
    let ops = ops.min(room);
    if ops == 0 {
        return Err("bench: file is at capacity; nothing to insert".into());
    }
    // Aim the stream inside (or just above) the resident key range.
    let hi = ledger.last().map(|(k, _)| *k).unwrap_or(1 << 40);
    let keys = match workload.as_str() {
        "uniform" => dsf_workloads::uniform_unique(7, ops, 0, hi.max(ops as u64 * 4)),
        "burst" => {
            let lo = hi / 2;
            dsf_workloads::burst(7, ops, lo, lo + (ops as u64) * 4)
        }
        "hammer" => dsf_workloads::hammer(ops, hi / 2, 1),
        other => return Err(format!("bench: unknown workload `{other}`")),
    };
    let mut done = 0u64;
    for k in keys {
        if ledger.insert(k, format!("bench-{k}")).is_ok() {
            done += 1;
        }
    }
    let s = ledger.op_stats();
    ledger
        .check_invariants()
        .map_err(|v| format!("invariants broken: {v:?}"))?;
    Ok(format!(
        "replayed {done} {workload} inserts (in memory only):\n\
         mean {:.2} page accesses/command, worst {}, J={}\n\
         shifts {}, records shifted {}\n",
        s.mean_accesses(),
        s.max_accesses,
        ledger.config().j,
        s.shifts,
        s.records_shifted,
    ))
}

fn gen_trace(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("gen-trace: missing <trace-path>")?;
    let workload = flag(args, "--workload").ok_or("gen-trace: missing --workload")?;
    let ops: usize = match flag(args, "--ops") {
        Some(s) => parse(&s, "--ops")?,
        None => 1000,
    };
    let seed: u64 = match flag(args, "--seed") {
        Some(s) => parse(&s, "--seed")?,
        None => 42,
    };
    let stream: Vec<dsf_workloads::Op> = match workload.as_str() {
        "uniform" => dsf_workloads::uniform_unique(seed, ops, 0, u64::MAX >> 8)
            .into_iter()
            .map(dsf_workloads::Op::Insert)
            .collect(),
        "burst" => dsf_workloads::burst(seed, ops, 1 << 40, (1 << 40) + ops as u64 * 8)
            .into_iter()
            .map(dsf_workloads::Op::Insert)
            .collect(),
        "hammer" => dsf_workloads::hammer(ops, 1 << 40, 1)
            .into_iter()
            .map(dsf_workloads::Op::Insert)
            .collect(),
        "mixed" => dsf_workloads::mixed_ops(seed, ops, 0.6, u64::MAX >> 8),
        other => return Err(format!("gen-trace: unknown workload `{other}`")),
    };
    std::fs::write(path, dsf_workloads::write_trace(&stream))
        .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    Ok(format!("wrote {} operations to `{path}`\n", stream.len()))
}

fn replay(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("replay: missing <path>")?;
    let trace_path = args.get(1).ok_or("replay: missing <trace-path>")?;
    let dry = has_flag(args, "--dry-run");
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read `{trace_path}`: {e}"))?;
    let ops = dsf_workloads::read_trace(&text)?;
    let mut ledger = open(path)?;
    let (mut ins, mut del, mut gets, mut scans, mut refused) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for op in &ops {
        match *op {
            dsf_workloads::Op::Insert(k) => {
                if ledger.insert(k, format!("replay-{k}")).is_ok() {
                    ins += 1;
                } else {
                    refused += 1;
                }
            }
            dsf_workloads::Op::Remove(k) => {
                if ledger.remove(&k).is_some() {
                    del += 1;
                }
            }
            dsf_workloads::Op::Get(k) => {
                let _ = ledger.get(&k);
                gets += 1;
            }
            dsf_workloads::Op::Scan { start, limit } => {
                let _ = ledger.range(start..).take(limit).count();
                scans += 1;
            }
        }
    }
    ledger
        .check_invariants()
        .map_err(|v| format!("invariants broken after replay: {v:?}"))?;
    if !dry {
        save(&ledger, path)?;
    }
    let s = ledger.op_stats();
    Ok(format!(
        "replayed {} ops ({ins} inserts, {del} deletes, {gets} gets, {scans} scans, {refused} refused at capacity){}\n\
         mean {:.2} page accesses/command, worst {}\n",
        ops.len(),
        if dry { " [dry run — file unchanged]" } else { "" },
        s.mean_accesses(),
        s.max_accesses,
    ))
}

fn image_export(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("image-export: missing <path>")?;
    let image = args.get(1).ok_or("image-export: missing <image-path>")?;
    let page_bytes: u32 = match flag(args, "--page-bytes") {
        Some(s) => parse(&s, "--page-bytes")?,
        None => 4096,
    };
    let ledger = open(path)?;
    let img = willard_dsf::durable::PhysicalImage::create(&ledger, image, page_bytes)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote `{image}`: {} records at their page addresses ({} pages × {page_bytes} B)\n",
        ledger.len(),
        img.pages() + 1,
    ))
}

fn image_stream(args: &[String]) -> Result<String, String> {
    let image = args.first().ok_or("image-stream: missing <image-path>")?;
    let lo: u64 = match flag(args, "--from") {
        Some(s) => parse(&s, "--from")?,
        None => 0,
    };
    let hi: u64 = match flag(args, "--to") {
        Some(s) => parse(&s, "--to")?,
        None => u64::MAX,
    };
    let mut img = willard_dsf::durable::PhysicalImage::open(image).map_err(|e| e.to_string())?;
    let (recs, report) = img
        .stream_range::<u64, String>(lo, hi)
        .map_err(|e| e.to_string())?;
    let mut out = String::new();
    for (k, v) in &recs {
        out.push_str(&format!("{k},{v}\n"));
    }
    out.push_str(&format!(
        "# {} records; {} seeks, {} pages, {} bytes read\n",
        recs.len(),
        report.seeks,
        report.pages_read,
        report.bytes_read
    ));
    Ok(out)
}

/// Replays `ops` inserts of `workload` against `ledger` in memory — the
/// shared driver of `top` and `serve-metrics` (same key streams as `bench`).
fn drive_workload(ledger: &mut Ledger, workload: &str, ops: usize) -> Result<u64, String> {
    let room = (ledger.capacity() - ledger.len()) as usize;
    let ops = ops.min(room);
    let hi = ledger.last().map(|(k, _)| *k).unwrap_or(1 << 40);
    let keys = match workload {
        "uniform" => dsf_workloads::uniform_unique(7, ops, 0, hi.max(ops as u64 * 4)),
        "burst" => {
            let lo = hi / 2;
            dsf_workloads::burst(7, ops, lo, lo + (ops as u64) * 4)
        }
        "hammer" => dsf_workloads::hammer(ops, hi / 2, 1),
        other => return Err(format!("unknown workload `{other}`")),
    };
    let mut done = 0u64;
    for k in keys {
        if ledger.insert(k, format!("tel-{k}")).is_ok() {
            done += 1;
        }
    }
    Ok(done)
}

fn top(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("top: missing <path>")?;
    let mut ledger = open(path)?; // driven in memory; never saved back
    let workload = flag(args, "--workload").unwrap_or_else(|| "uniform".into());
    let ops: usize = match flag(args, "--ops") {
        Some(s) => parse(&s, "--ops")?,
        None => 1000,
    };
    willard_dsf::telemetry::global().enable();
    let done = drive_workload(&mut ledger, &workload, ops).map_err(|e| format!("top: {e}"))?;
    ledger.refresh_telemetry_gauges();
    willard_dsf::telemetry::refresh_span_gauges();
    let s = ledger.op_stats();
    let (spans, dropped) = willard_dsf::telemetry::spans().snapshot();
    Ok(format!(
        "drove {done} {workload} inserts in memory (worst {} / mean {:.2} page accesses)\n\
         spans retained: {} (dropped {dropped})\n\n{}",
        s.max_accesses,
        s.mean_accesses(),
        spans.len(),
        willard_dsf::telemetry::global().render_text(),
    ))
}

fn serve_metrics(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("serve-metrics: missing <path>")?;
    let mut ledger = open(path)?; // served from memory; never saved back
    let port: u16 = match flag(args, "--port") {
        Some(s) => parse(&s, "--port")?,
        None => 9184,
    };
    willard_dsf::telemetry::global().enable();
    if let Some(workload) = flag(args, "--workload") {
        let ops: usize = match flag(args, "--ops") {
            Some(s) => parse(&s, "--ops")?,
            None => 1000,
        };
        let done = drive_workload(&mut ledger, &workload, ops)
            .map_err(|e| format!("serve-metrics: {e}"))?;
        println!("drove {done} {workload} inserts to populate the spine");
    }
    ledger.refresh_telemetry_gauges();
    let listener = willard_dsf::telemetry::MetricsListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("serve-metrics: cannot bind port {port}: {e}"))?;
    let addr = listener.local_addr();
    println!("serving http://{addr}/metrics  (also /json, /spans)");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    if has_flag(args, "--oneshot") {
        let requests: usize = match flag(args, "--requests") {
            Some(s) => parse(&s, "--requests")?,
            None => 1,
        };
        listener
            .serve_requests(requests)
            .map_err(|e| format!("serve-metrics: {e}"))?;
        Ok(format!("served {requests} request(s); exiting\n"))
    } else {
        listener
            .serve_forever()
            .map_err(|e| format!("serve-metrics: {e}"))?;
        Ok(String::new())
    }
}

// ---------------------------------------------------------------------
// Network front-end (`dsf serve` / `dsf client`).
// ---------------------------------------------------------------------

fn serve(args: &[String]) -> Result<String, String> {
    use willard_dsf::server::{DurableKv, ServerConfig, ShardedKv};
    use willard_dsf::{KvService, Server, SyncPolicy};

    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:4600".into());
    let shards: u32 = match flag(args, "--shards") {
        Some(s) => parse(&s, "--shards")?,
        None => 4,
    };
    let pages: u32 = match flag(args, "--pages") {
        Some(s) => parse(&s, "--pages")?,
        None => 256,
    };
    let d: u32 = match flag(args, "--min-density") {
        Some(s) => parse(&s, "--min-density")?,
        None => 8,
    };
    let big_d: u32 = match flag(args, "--max-density") {
        Some(s) => parse(&s, "--max-density")?,
        None => 48,
    };
    let per_shard = DenseFileConfig::control2(pages, d, big_d);

    let (service, backend): (std::sync::Arc<dyn KvService>, String) = if has_flag(args, "--memory")
    {
        let kv = ShardedKv::with_config(shards, per_shard).map_err(|e| format!("serve: {e}"))?;
        (
            std::sync::Arc::new(kv),
            format!("in-memory, {shards} shards"),
        )
    } else {
        let dir = args
            .first()
            .filter(|a| !a.starts_with("--"))
            .ok_or("serve: missing <dir> (or pass --memory)")?;
        let window_frames: u32 = match flag(args, "--window-frames") {
            Some(s) => parse(&s, "--window-frames")?,
            None => 64,
        };
        let window_micros: u64 = match flag(args, "--window-micros") {
            Some(s) => parse(&s, "--window-micros")?,
            None => 2_000,
        };
        let policy = SyncPolicy::CommitWindow {
            max_frames: window_frames,
            max_micros: window_micros,
        };
        // First run creates the store; later runs recover it (the shard
        // count then comes from the directory, not --shards).
        let kv = if std::path::Path::new(dir).join("shard-0").is_dir() {
            DurableKv::open(dir, policy).map_err(|e| format!("serve: cannot open `{dir}`: {e}"))?
        } else {
            DurableKv::create(dir, shards, per_shard, policy)
                .map_err(|e| format!("serve: cannot create `{dir}`: {e}"))?
        };
        let n = kv.shard_count();
        (
            std::sync::Arc::new(kv),
            format!("durable `{dir}`, {n} shards"),
        )
    };

    let mut cfg = ServerConfig::default();
    if let Some(b) = flag(args, "--batch-window") {
        cfg.accumulator.batch_window = parse(&b, "--batch-window")?;
    }
    let server = Server::bind(service, cfg, &addr)
        .map_err(|e| format!("serve: cannot bind `{addr}`: {e}"))?;
    println!("serving dsf://{} ({backend})", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    // Block until a client sends the Shutdown frame, then drain: every
    // acked command (Strict or Relaxed) is durable when this returns.
    server.wait_shutdown_request();
    server.shutdown().map_err(|e| format!("serve: {e}"))?;
    Ok("shutdown complete\n".into())
}

fn client(args: &[String]) -> Result<String, String> {
    use willard_dsf::server::{Outcome, Request, Response};
    use willard_dsf::Durability;

    let addr = args.first().ok_or("client: missing <addr>")?;
    let sub = args
        .get(1)
        .ok_or("client: expected ping|insert|remove|get|scan|count|flush|shutdown")?;
    let durability = if has_flag(args, "--relaxed") {
        Durability::Relaxed
    } else {
        Durability::Strict
    };
    let req = match sub.as_str() {
        "ping" => Request::Ping,
        "count" => Request::Count,
        "flush" => Request::Flush,
        "shutdown" => Request::Shutdown,
        "insert" => {
            let key: u64 = parse(args.get(2).ok_or("client insert: missing <key>")?, "key")?;
            let value = args.get(3).ok_or("client insert: missing <value>")?.clone();
            Request::Insert {
                key,
                value,
                durability,
            }
        }
        "remove" => {
            let key: u64 = parse(args.get(2).ok_or("client remove: missing <key>")?, "key")?;
            Request::Remove { key, durability }
        }
        "get" => {
            let key: u64 = parse(args.get(2).ok_or("client get: missing <key>")?, "key")?;
            Request::Get { key }
        }
        "scan" => {
            let start: u64 = match flag(args, "--from") {
                Some(s) => parse(&s, "--from")?,
                None => 0,
            };
            let limit: u32 = match flag(args, "--limit") {
                Some(s) => parse(&s, "--limit")?,
                None => 50,
            };
            Request::Scan { start, limit }
        }
        other => return Err(format!("client: unknown subcommand `{other}`")),
    };
    let mut c = willard_dsf::server::Client::connect(addr.as_str())
        .map_err(|e| format!("client: cannot connect to `{addr}`: {e}"))?;
    let rsp = c
        .call(&req)
        .map_err(|e| format!("client: request failed: {e}"))?;
    Ok(match rsp {
        Response::Applied { outcome, seq } => match outcome {
            Outcome::Inserted => format!("inserted (seq {seq})\n"),
            Outcome::Replaced(old) => format!("replaced (was: {old}, seq {seq})\n"),
            Outcome::Removed(old) => format!("removed (was: {old}, seq {seq})\n"),
            Outcome::NotFound => "not found\n".to_string(),
            Outcome::Rejected(e) => return Err(format!("rejected: {e}")),
        },
        Response::Value(Some(v)) => format!("{v}\n"),
        Response::Value(None) => "not found\n".to_string(),
        Response::Entries(entries) => {
            let mut out = String::new();
            for (k, v) in &entries {
                out.push_str(&format!("{k}\t{v}\n"));
            }
            out.push_str(&format!("({} records)\n", entries.len()));
            out
        }
        Response::Pong => "pong\n".to_string(),
        Response::Count(n) => format!("{n} records\n"),
        Response::Flushed => "flushed\n".to_string(),
        Response::ShuttingDown => "server shutting down\n".to_string(),
        Response::Error(e) => return Err(format!("server error: {e}")),
    })
}

// ---------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------

fn flight(args: &[String]) -> Result<String, String> {
    let sub = args
        .first()
        .ok_or("flight: expected record|replay|explain")?;
    match sub.as_str() {
        "record" => flight_record(&args[1..]),
        "replay" => flight_replay(&args[1..]),
        "explain" => flight_explain(&args[1..]),
        other => Err(format!("flight: unknown subcommand `{other}`")),
    }
}

/// Builds the audit budget a `.flight` file carries from a file's resolved
/// configuration.
fn flight_budget(ledger: &Ledger) -> willard_dsf::flight::BoundBudget {
    let cfg = ledger.config();
    willard_dsf::flight::BoundBudget {
        j: u64::from(cfg.j),
        k: u64::from(cfg.k),
        log_slots: u64::from(cfg.log_slots),
        gap: cfg.slot_max - cfg.slot_min,
    }
}

fn flight_record(args: &[String]) -> Result<String, String> {
    use willard_dsf::flight;
    let out = args.first().ok_or("flight record: missing <out.flight>")?;
    let example52 = has_flag(args, "--example52");
    // Moment snapshots cost O(M) per flag-stable moment; always on for the
    // 8-page Example 5.2 file, opt-in otherwise.
    let moments = has_flag(args, "--moments") || example52;

    // Telemetry runs alongside so the flight log can be cross-checked
    // against the histogram (`dsf_command_page_accesses_max` below must
    // equal the worst command `flight explain` reconstructs).
    let reg = willard_dsf::telemetry::global();
    reg.reset();
    willard_dsf::telemetry::spans().clear();
    reg.enable();
    flight::clear();
    flight::set_moments(moments);

    let (ledger, done) = if example52 {
        // The paper's Example 5.2: M=8, d#=9, D#=18, J=3, layout
        // [16,1,0,1,9,9,9,16], then the two inserts Z₁ (7500) and Z₂ (500)
        // whose flag-stable moments are Figure 4's rows t₁..t₈.
        let cfg = DenseFileConfig::control2(8, 9, 18)
            .with_j(3)
            .with_macro_blocking(willard_dsf::MacroBlocking::Disabled);
        let mut f: Ledger = DenseFile::new(cfg).map_err(|e| e.to_string())?;
        let counts = [16usize, 1, 0, 1, 9, 9, 9, 16];
        let layout: Vec<Vec<(u64, String)>> = counts
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                (0..n)
                    .map(|i| (s as u64 * 1000 + i as u64 + 1, format!("r{s}.{i}")))
                    .collect()
            })
            .collect();
        f.bulk_load_per_slot(layout)
            .map_err(|e| format!("flight record: {e}"))?;
        flight::enable();
        f.insert(7500, "z1".into()).map_err(|e| e.to_string())?;
        f.insert(500, "z2".into()).map_err(|e| e.to_string())?;
        (f, 2)
    } else {
        let pages: u32 = match flag(args, "--pages") {
            Some(s) => parse(&s, "--pages")?,
            None => 256,
        };
        let d: u32 = match flag(args, "--min-density") {
            Some(s) => parse(&s, "--min-density")?,
            None => 6,
        };
        let big_d: u32 = match flag(args, "--max-density") {
            Some(s) => parse(&s, "--max-density")?,
            None => 8,
        };
        let mut config = DenseFileConfig::control2(pages, d, big_d);
        if let Some(j) = flag(args, "--j") {
            config = config.with_j(parse(&j, "--j")?);
        }
        let mut f: Ledger = DenseFile::new(config).map_err(|e| e.to_string())?;
        // A 3/5 backbone makes the subsequent inserts trigger real
        // maintenance (same shape as `exp_telemetry`).
        let backbone = f.capacity() * 3 / 5;
        let stride = u64::MAX / (backbone + 1);
        f.bulk_load((0..backbone).map(|i| (i * stride, format!("r{i}"))))
            .map_err(|e| format!("flight record: {e}"))?;
        flight::enable();
        let workload = flag(args, "--workload").unwrap_or_else(|| "uniform".into());
        let ops: usize = match flag(args, "--ops") {
            Some(s) => parse(&s, "--ops")?,
            None => 1000,
        };
        let done =
            drive_workload(&mut f, &workload, ops).map_err(|e| format!("flight record: {e}"))?;
        (f, done)
    };
    flight::disable();
    flight::set_moments(false);

    let budget = flight_budget(&ledger);
    flight::save(out, budget).map_err(|e| format!("cannot write `{out}`: {e}"))?;
    let ring = flight::ring();
    let hist = reg.histogram(
        "dsf_command_page_accesses",
        "page accesses per structural command (the paper's cost unit)",
    );
    let summary = format!(
        "recorded {done} commands to `{out}`: {} events ({} dropped), {} bytes\n\
         worst command: {} page accesses (J={}, page bound {})\n\
         dsf_command_page_accesses_max {}\n",
        ring.total(),
        ring.dropped(),
        ring.bytes(),
        ledger.op_stats().max_accesses,
        budget.j,
        budget.page_limit(),
        hist.max(),
    );
    reg.disable();
    flight::clear();
    Ok(summary)
}

fn flight_replay(args: &[String]) -> Result<String, String> {
    use willard_dsf::flight::Violation;
    let path = args.first().ok_or("flight replay: missing <file.flight>")?;
    let log = willard_dsf::flight::FlightLog::load(path)
        .map_err(|e| format!("cannot load `{path}`: {e}"))?;
    let attr = log.replay();
    let audit = attr.audit();
    let mut out = format!(
        "flight log `{path}`: {} events retained ({} dropped of {} recorded)\n\
         budget: J={} K={} L={} gap={} → page bound {}\n\
         commands: {} complete, {} cancelled, {} incomplete\n\
         accesses: total {}, worst {}; per-phase attribution reconciles: {}\n",
        log.events.len(),
        log.dropped,
        log.total,
        log.budget.j,
        log.budget.k,
        log.budget.log_slots,
        log.budget.gap,
        audit.page_limit,
        attr.command_count(),
        attr.cancelled,
        attr.incomplete,
        attr.total_accesses(),
        attr.max_accesses(),
        attr.reconciles(),
    );
    if audit.ok() {
        out.push_str("audit: OK — every command within the J-step budget and the page bound\n");
    } else {
        out.push_str(&format!("audit: {} violation(s)\n", audit.violations.len()));
        for v in &audit.violations {
            match v {
                Violation::JBudget { seq, shift_steps } => out.push_str(&format!(
                    "  command {seq}: {shift_steps} SHIFT steps > J={}\n",
                    log.budget.j
                )),
                Violation::PageBound { seq, accesses } => out.push_str(&format!(
                    "  command {seq}: {accesses} page accesses > bound {}\n",
                    audit.page_limit
                )),
            }
        }
    }
    Ok(out)
}

fn flight_explain(args: &[String]) -> Result<String, String> {
    let path = args
        .first()
        .ok_or("flight explain: missing <file.flight>")?;
    let log = willard_dsf::flight::FlightLog::load(path)
        .map_err(|e| format!("cannot load `{path}`: {e}"))?;
    let attr = log.replay();
    if let Some(seq_s) = flag(args, "--seq") {
        let seq: u64 = parse(&seq_s, "--seq")?;
        let c = attr.find(seq).ok_or(format!(
            "flight explain: no complete command with seq {seq}"
        ))?;
        return Ok(explain_command(c, &log.budget));
    }
    let k: usize = match flag(args, "--top") {
        Some(s) => parse(&s, "--top")?,
        None => 3,
    };
    let top = attr.top(k);
    if top.is_empty() {
        return Ok("no complete commands in this flight log\n".to_string());
    }
    let mut out = format!(
        "top {} of {} commands by page accesses (J={}, page bound {}):\n\
         \x20  seq  kind    slot  pages   user  shift  activ  rollb  wal  steps  wal_frames\n",
        top.len(),
        attr.command_count(),
        log.budget.j,
        log.budget.page_limit(),
    );
    for c in &top {
        out.push_str(&format!(
            "  {:>5} {:7} {:>5} {:>6} {:>6} {:>6} {:>6} {:>6} {:>4} {:>6} {:>11}\n",
            c.seq,
            c.kind.map(|k| k.label()).unwrap_or("?"),
            c.target,
            c.accesses,
            c.user_pages(),
            c.shift_pages(),
            c.activate_pages(),
            c.rollback_pages(),
            c.wal_pages(),
            c.shift_steps,
            c.wal_frames,
        ));
    }
    let worst = attr.worst().expect("top is non-empty");
    out.push_str(&format!("\nworst command: seq {}\n", worst.seq));
    out.push_str(&explain_command(worst, &log.budget));
    Ok(out)
}

/// Renders one command's full causal trace (plus its Figure-4-style
/// per-moment table when moment snapshots were recorded).
fn explain_command(
    c: &willard_dsf::flight::CommandCost,
    budget: &willard_dsf::flight::BoundBudget,
) -> String {
    let mut out = format!(
        "command {} ({} → slot {}): {} page accesses (page bound {}), {} µs\n\
         \x20 breakdown: user {}, SHIFT {}, ACTIVATE {}, rollback {}, WAL {} pages\n",
        c.seq,
        c.kind.map(|k| k.label()).unwrap_or("?"),
        c.target,
        c.accesses,
        budget.page_limit(),
        c.micros,
        c.user_pages(),
        c.shift_pages(),
        c.activate_pages(),
        c.rollback_pages(),
        c.wal_pages(),
    );
    out.push_str(&format!(
        "  {} SHIFT steps of J={}; {} flags lowered; {} WAL frames ({} B); fsync {} µs; lock wait {} µs\n",
        c.shift_steps,
        budget.j,
        c.flags_lowered,
        c.wal_frames,
        c.wal_bytes,
        c.fsync_micros,
        c.lock_wait_micros,
    ));
    for (node, dest) in &c.activations {
        out.push_str(&format!("  ACTIVATE(v{node}) → DEST slot {dest}\n"));
    }
    for (node, new_dest) in &c.rollbacks {
        out.push_str(&format!(
            "  rollback: DEST(v{node}) reset to slot {new_dest}\n"
        ));
    }
    for s in &c.shifts {
        out.push_str(&format!(
            "  SHIFT(v{}): slot {} → slot {}, {} records\n",
            s.node, s.source, s.dest, s.moved
        ));
    }
    if !c.moments.is_empty() {
        out.push_str("  flag-stable moments (per-slot record counts, as in Figure 4):\n");
        for (i, (class, counts)) in c.moments.iter().enumerate() {
            let label = if *class == 0 {
                "after step 3 "
            } else {
                "after step 4c"
            };
            let row: Vec<String> = counts.iter().map(u64::to_string).collect();
            out.push_str(&format!("    m{} {}: [{}]\n", i + 1, label, row.join(", ")));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Bench regression gate.
// ---------------------------------------------------------------------

/// Extracts a top-level numeric field from one of the `BENCH_*.json`
/// artifacts (flat enough that a full JSON parser is not worth a
/// dependency; nested objects only shadow keys we never gate on).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let i = text.find(&pat)? + pat.len();
    let rest = text[i..].trim_start();
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || "+-.eE".contains(ch)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Every JSON key of `text` starting with `prefix` (e.g. the per-scenario
/// `max_accesses_<scenario>` metrics E17 emits), in file order.
fn json_keys_with_prefix(text: &str, prefix: &str) -> Vec<String> {
    let pat = format!("\"{prefix}");
    let mut keys = Vec::new();
    let mut at = 0;
    while let Some(i) = text[at..].find(&pat) {
        let start = at + i + 1; // past the opening quote
        let Some(len) = text[start..].find('"') else {
            break;
        };
        let key = &text[start..start + len];
        if text[start + len + 1..].trim_start().starts_with(':') {
            keys.push(key.to_string());
        }
        at = start + len + 1;
    }
    keys
}

fn bench_gate(args: &[String]) -> Result<String, String> {
    let baseline_path = args.first().ok_or("bench-gate: missing <baseline.json>")?;
    let candidate_path = args.get(1).ok_or("bench-gate: missing <candidate.json>")?;
    let threshold: f64 = match flag(args, "--threshold") {
        Some(s) => parse(&s, "--threshold")?,
        None => 0.15,
    };
    let base = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read `{baseline_path}`: {e}"))?;
    let cand = std::fs::read_to_string(candidate_path)
        .map_err(|e| format!("cannot read `{candidate_path}`: {e}"))?;
    // (metric, higher-is-better). Only metrics present in BOTH files gate.
    const GATED: &[(&str, bool)] = &[
        ("io_call_ratio", true),
        ("fsync_ratio", true),
        ("overhead_ratio", false),
        ("max_accesses", false),
        // Wall-clock ratios (sequential ms / batched ms): the batch
        // pipeline must stay cheaper in CPU terms, not just in syscalls.
        ("pool_wall_ratio", true),
        ("core_wall_ratio", true),
        ("wal_wall_ratio", true),
        // E16 async engine: durable-ingest p99 speedup of the commit
        // window over fsync-per-command at equal durability-on-ack.
        ("p99_speedup", true),
        // E18 server: commands per group commit at 8 clients (must stay
        // well above 1 — the accumulator's whole point), and the n=1/n=8
        // fsyncs-per-command ratio (concurrency must keep amortizing).
        ("serve_group_commit", true),
        ("serve_fsync_amortization", true),
    ];
    let mut report = format!(
        "bench-gate: `{candidate_path}` vs baseline `{baseline_path}` (threshold {:.0}%)\n",
        threshold * 100.0
    );
    let mut checked = 0u32;
    let mut regressions: Vec<&str> = Vec::new();
    for &(key, higher_better) in GATED {
        let (Some(b), Some(c)) = (json_number(&base, key), json_number(&cand, key)) else {
            continue;
        };
        checked += 1;
        let change = if b == 0.0 { 0.0 } else { (c - b) / b };
        let regressed = if higher_better {
            change < -threshold
        } else {
            change > threshold
        };
        report.push_str(&format!(
            "  {key:<16} baseline {b:>10.4}  candidate {c:>10.4}  change {:>+7.1}%  {}\n",
            change * 100.0,
            if regressed { "REGRESSION" } else { "ok" }
        ));
        if regressed {
            regressions.push(key);
        }
    }
    // Per-scenario worst-case gates (E17): the streams and structures are
    // fully deterministic, so these gate at 0% slack — one extra page on
    // any scenario's worst command fails the gate. A scenario present in
    // the baseline but missing from the candidate also fails (a silently
    // dropped scenario must not pass).
    let mut dynamic: Vec<String> = Vec::new();
    for key in json_keys_with_prefix(&base, "max_accesses_") {
        let Some(b) = json_number(&base, &key) else {
            continue;
        };
        checked += 1;
        let line = match json_number(&cand, &key) {
            None => {
                dynamic.push(key.clone());
                format!("  {key:<34} baseline {b:>6.0}  candidate    MISSING  REGRESSION\n")
            }
            Some(c) => {
                let regressed = c > b;
                if regressed {
                    dynamic.push(key.clone());
                }
                format!(
                    "  {key:<34} baseline {b:>6.0}  candidate {c:>6.0}  exact  {}\n",
                    if regressed { "REGRESSION" } else { "ok" }
                )
            }
        };
        report.push_str(&line);
    }
    let mut regressions: Vec<&str> = regressions
        .into_iter()
        .chain(dynamic.iter().map(String::as_str))
        .collect();
    regressions.dedup();
    if checked == 0 {
        return Err(format!(
            "bench-gate: none of the gated metrics (io_call_ratio, fsync_ratio, overhead_ratio, \
             max_accesses, pool_wall_ratio, core_wall_ratio, wal_wall_ratio, p99_speedup, \
             serve_group_commit, serve_fsync_amortization, max_accesses_<scenario>) appear \
             in both `{baseline_path}` and `{candidate_path}`"
        ));
    }
    if let Some(rp) = flag(args, "--report") {
        std::fs::write(&rp, &report).map_err(|e| format!("cannot write `{rp}`: {e}"))?;
    }
    if regressions.is_empty() {
        report.push_str("bench-gate: PASS\n");
        Ok(report)
    } else {
        Err(format!(
            "{report}bench-gate: FAIL — regression in {}",
            regressions.join(", ")
        ))
    }
}

fn verify(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("verify: missing <path>")?;
    let ledger = open(path)?;
    match ledger.check_invariants() {
        Ok(()) => Ok(format!(
            "ok: {} records, all invariants hold (order, density, BALANCE(d,D), flags)\n",
            ledger.len()
        )),
        Err(violations) => {
            let mut msg = String::from("INVARIANT VIOLATIONS:\n");
            for v in violations {
                msg.push_str(&format!("  - {v}\n"));
            }
            Err(msg)
        }
    }
}
